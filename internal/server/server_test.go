package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/libsynth"
)

const c17Bench = `
# ISCAS85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(libsynth.File())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// do issues a request and decodes the JSON response into out (if non-nil).
func do(t *testing.T, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func loadC17(t *testing.T, ts *httptest.Server) DesignSummary {
	t.Helper()
	var sum DesignSummary
	code, raw := do(t, http.MethodPut, ts.URL+"/designs/c17", LoadRequest{Bench: c17Bench}, &sum)
	if code != http.StatusCreated {
		t.Fatalf("load c17: status %d: %s", code, raw)
	}
	return sum
}

func gateNames(t *testing.T, ts *httptest.Server, design string) []GateInfo {
	t.Helper()
	var resp struct {
		Gates []GateInfo `json:"gates"`
	}
	code, raw := do(t, http.MethodGet, ts.URL+"/designs/"+design+"/gates", nil, &resp)
	if code != http.StatusOK || len(resp.Gates) == 0 {
		t.Fatalf("gates: status %d: %s", code, raw)
	}
	return resp.Gates
}

func TestLoadQueryEditLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	sum := loadC17(t, ts)
	if sum.Gates != 6 || sum.Version != 1 {
		t.Fatalf("c17 summary = %+v, want 6 gates at version 1", sum)
	}
	if sum.ArrivalPs["0"] <= 0 || sum.ArrivalPs["3"] <= sum.ArrivalPs["0"] {
		t.Fatalf("implausible arrival quantiles: %v", sum.ArrivalPs)
	}

	var paths struct {
		Version uint64        `json:"version"`
		Paths   []PathSummary `json:"paths"`
	}
	code, raw := do(t, http.MethodGet, ts.URL+"/designs/c17/paths?k=3", nil, &paths)
	if code != http.StatusOK || len(paths.Paths) == 0 {
		t.Fatalf("paths: status %d: %s", code, raw)
	}
	if paths.Paths[0].QuantilePs["0"] != sum.ArrivalPs["0"] {
		t.Fatalf("worst path %v does not match the critical arrival %v",
			paths.Paths[0].QuantilePs["0"], sum.ArrivalPs["0"])
	}

	gates := gateNames(t, ts, "c17")
	var edit EditResponse
	code, raw = do(t, http.MethodPost, ts.URL+"/designs/c17/edits",
		EditRequest{Op: "resize", Gate: gates[0].Name, Strength: 8}, &edit)
	if code != http.StatusOK {
		t.Fatalf("resize: status %d: %s", code, raw)
	}
	if edit.Version != 2 || edit.Reevaluated == 0 {
		t.Fatalf("resize response = %+v, want version 2 with re-evaluations", edit)
	}

	var slacks struct {
		WNSPs    float64            `json:"wns_ps"`
		SlacksPs map[string]float64 `json:"slacks_ps"`
	}
	code, raw = do(t, http.MethodGet, ts.URL+"/designs/c17/slacks?period_ps=2000&level=3", nil, &slacks)
	if code != http.StatusOK || len(slacks.SlacksPs) == 0 {
		t.Fatalf("slacks: status %d: %s", code, raw)
	}
	for _, sl := range slacks.SlacksPs {
		if sl < slacks.WNSPs {
			t.Fatalf("WNS %v is not the minimum of %v", slacks.WNSPs, slacks.SlacksPs)
		}
	}

	code, raw = do(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		`timingd_design_edits_total{design="c17"} 1`,
		`timingd_design_gates_reevaluated_total{design="c17"}`,
		`timingd_design_cache_hit_ratio{design="c17"}`,
		// The request metrics live on the process-wide obs registry, so the
		// counts accumulate across tests: assert the series exist, not their
		// exact values.
		`timingd_requests_total{route="POST /designs/{name}/edits"}`,
		`timingd_request_seconds_count{route="GET /designs/{name}/slacks"}`,
		"timingd_designs 1",
	} {
		if !strings.Contains(raw, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, raw)
		}
	}

	if code, _ = do(t, http.MethodDelete, ts.URL+"/designs/c17", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code, _ = do(t, http.MethodGet, ts.URL+"/designs/c17", nil, nil); code != http.StatusNotFound {
		t.Fatalf("summary after delete: status %d, want 404", code)
	}
}

func TestLoadBuiltinCircuit(t *testing.T) {
	_, ts := newTestServer(t)
	var sum DesignSummary
	code, raw := do(t, http.MethodPut, ts.URL+"/designs/adder", LoadRequest{Circuit: "ADD"}, &sum)
	if code != http.StatusCreated {
		t.Fatalf("load ADD: status %d: %s", code, raw)
	}
	if sum.Gates == 0 {
		t.Fatalf("built-in circuit loaded empty: %+v", sum)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	loadC17(t, ts)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"load both sources", http.MethodPut, "/designs/x", LoadRequest{Circuit: "ADD", Bench: c17Bench}, http.StatusBadRequest},
		{"load no source", http.MethodPut, "/designs/x", LoadRequest{}, http.StatusBadRequest},
		{"load unknown circuit", http.MethodPut, "/designs/x", LoadRequest{Circuit: "zz9"}, http.StatusBadRequest},
		{"duplicate load", http.MethodPut, "/designs/c17", LoadRequest{Bench: c17Bench}, http.StatusConflict},
		{"query missing design", http.MethodGet, "/designs/nope", nil, http.StatusNotFound},
		{"paths bad k", http.MethodGet, "/designs/c17/paths?k=0", nil, http.StatusBadRequest},
		{"slacks no period", http.MethodGet, "/designs/c17/slacks", nil, http.StatusBadRequest},
		{"edit unknown op", http.MethodPost, "/designs/c17/edits", EditRequest{Op: "explode"}, http.StatusBadRequest},
		{"edit unknown gate", http.MethodPost, "/designs/c17/edits", EditRequest{Op: "resize", Gate: "UX", Strength: 2}, http.StatusBadRequest},
		{"edit bad slew", http.MethodPost, "/designs/c17/edits", EditRequest{Op: "set_input_slew", Net: "G1", SlewPs: -5}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, raw := do(t, tc.method, ts.URL+tc.path, tc.body, nil)
		if code != tc.want {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, code, tc.want, raw)
		}
	}
}

// TestConcurrentQueriesWithEditStream is the issue's server acceptance: at
// least 32 concurrent query goroutines mixed with a stream of edits, all
// succeeding, race-clean (run under -race in CI).
func TestConcurrentQueriesWithEditStream(t *testing.T) {
	_, ts := newTestServer(t)
	loadC17(t, ts)
	gates := gateNames(t, ts, "c17")

	const queryGoroutines = 32
	const queriesEach = 20
	var wg sync.WaitGroup
	errs := make(chan error, queryGoroutines+1)

	for i := 0; i < queryGoroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < queriesEach; j++ {
				var url string
				switch j % 3 {
				case 0:
					url = ts.URL + "/designs/c17"
				case 1:
					url = ts.URL + "/designs/c17/paths?k=2"
				default:
					url = ts.URL + "/designs/c17/slacks?period_ps=2000"
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(i)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		strengths := []int{1, 2, 4, 8}
		for j := 0; j < 50; j++ {
			body, _ := json.Marshal(EditRequest{
				Op: "resize", Gate: gates[j%len(gates)].Name, Strength: strengths[j%len(strengths)],
			})
			resp, err := http.Post(ts.URL+"/designs/c17/edits", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("edit %d: status %d", j, resp.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var sum DesignSummary
	if code, raw := do(t, http.MethodGet, ts.URL+"/designs/c17", nil, &sum); code != http.StatusOK {
		t.Fatalf("final summary: status %d: %s", code, raw)
	}
	if sum.Stats.Edits != 50 || sum.Version != 51 {
		t.Fatalf("after 50 edits: %+v", sum)
	}
	code, raw := do(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
	if code != http.StatusOK || !strings.Contains(raw, `timingd_design_edits_total{design="c17"} 50`) {
		t.Fatalf("metrics after edit stream (status %d):\n%s", code, raw)
	}
}

func TestCloseRejectsFurtherWork(t *testing.T) {
	s := New(libsynth.File())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var sum DesignSummary
	if code, raw := do(t, http.MethodPut, ts.URL+"/designs/c17", LoadRequest{Bench: c17Bench}, &sum); code != http.StatusCreated {
		t.Fatalf("load: status %d: %s", code, raw)
	}
	s.Close()
	code, _ := do(t, http.MethodPut, ts.URL+"/designs/d2", LoadRequest{Bench: c17Bench}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("load after close: status %d, want 503", code)
	}
	// The design registry is cleared on close, so queries and edits 404.
	if code, _ = do(t, http.MethodPost, ts.URL+"/designs/c17/edits",
		EditRequest{Op: "resize", Gate: "U1", Strength: 2}, nil); code != http.StatusNotFound {
		t.Fatalf("edit after close: status %d, want 404", code)
	}
}
