package server

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// defaultSlowLogSize is how many slowest requests the in-memory slow log
// keeps when -slow-log is not set.
const defaultSlowLogSize = 32

// slowEntry is one kept request, as GET /v1/debug/slow renders it.
type slowEntry struct {
	Time       string  `json:"time"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Design     string  `json:"design,omitempty"`
	Corners    int     `json:"corners,omitempty"`
	Status     int     `json:"status"`
	DurationMS float64 `json:"duration_ms"`
	RequestID  string  `json:"request_id"`
	TraceID    string  `json:"trace_id,omitempty"`
}

// slowLog keeps the N slowest user requests seen since startup: a bounded
// unordered buffer whose current minimum is evicted when a slower request
// arrives. Cluster-internal calls never enter it.
type slowLog struct {
	mu      sync.Mutex
	cap     int
	entries []slowEntry
	durs    []time.Duration
	minIdx  int // index of the fastest kept entry, valid when full
}

func newSlowLog(capacity int) *slowLog {
	if capacity <= 0 {
		capacity = defaultSlowLogSize
	}
	return &slowLog{cap: capacity}
}

// wouldRecord reports whether a request of duration d would be kept —
// callers use it to skip building an entry for the common fast path.
func (sl *slowLog) wouldRecord(d time.Duration) bool {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return len(sl.entries) < sl.cap || d > sl.durs[sl.minIdx]
}

func (sl *slowLog) record(e slowEntry, d time.Duration) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if len(sl.entries) < sl.cap {
		sl.entries = append(sl.entries, e)
		sl.durs = append(sl.durs, d)
		if len(sl.entries) == sl.cap {
			sl.refreshMin()
		}
		return
	}
	if d <= sl.durs[sl.minIdx] {
		return // a faster request raced past wouldRecord; drop it
	}
	sl.entries[sl.minIdx] = e
	sl.durs[sl.minIdx] = d
	sl.refreshMin()
}

func (sl *slowLog) refreshMin() {
	sl.minIdx = 0
	for i, d := range sl.durs {
		if d < sl.durs[sl.minIdx] {
			sl.minIdx = i
		}
	}
}

// snapshot returns the kept entries, slowest first.
func (sl *slowLog) snapshot() []slowEntry {
	sl.mu.Lock()
	idx := make([]int, len(sl.entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return sl.durs[idx[a]] > sl.durs[idx[b]] })
	out := make([]slowEntry, len(idx))
	for i, j := range idx {
		out[i] = sl.entries[j]
	}
	sl.mu.Unlock()
	return out
}

// handleSlow serves GET /v1/debug/slow: the slowest requests since startup,
// slowest first, each with its correlation IDs so an operator can jump from
// a latency outlier straight to its log lines and trace.
func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	entries := s.slow.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.slow.cap,
		"slowest":  entries,
	})
}
