// Package server is the long-lived timing-query service behind cmd/timingd:
// it loads the coefficient library once, hosts many named designs — each an
// incremental incsta.Engine — and serves concurrent timing queries over
// HTTP/JSON while ECO edits stream in. Edits are serialized per design
// through a single-writer queue; queries read immutable engine snapshots
// and never block on an edit in flight.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/circuits"
	"repro/internal/device"
	"repro/internal/incsta"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/sta"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
)

// Server hosts the designs. Create with New, mount Handler on an
// http.Server, Close on shutdown.
type Server struct {
	lib *timinglib.File
	mux *http.ServeMux
	met *metrics

	mu      sync.Mutex
	designs map[string]*design
	closed  bool
}

// New builds a server around one coefficient library (loaded once, shared
// by every design).
func New(lib *timinglib.File) *Server {
	s := &Server{
		lib:     lib,
		mux:     http.NewServeMux(),
		met:     newMetrics(),
		designs: map[string]*design{},
	}
	route := func(pattern string, h func(http.ResponseWriter, *http.Request)) {
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			t0 := time.Now()
			h(w, r)
			s.met.observe(pattern, t0)
		})
	}
	route("GET /healthz", s.handleHealth)
	route("GET /metrics", s.handleMetrics)
	route("GET /designs", s.handleList)
	route("PUT /designs/{name}", s.handleLoad)
	route("DELETE /designs/{name}", s.handleDelete)
	route("GET /designs/{name}", s.handleSummary)
	route("GET /designs/{name}/gates", s.handleGates)
	route("GET /designs/{name}/paths", s.handlePaths)
	route("GET /designs/{name}/slacks", s.handleSlacks)
	route("POST /designs/{name}/edits", s.handleEdit)
	// Catch-all for unregistered paths: a JSON 404, counted under the
	// bounded "other" series instead of minting a label per probed URL.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		httpError(w, http.StatusNotFound, "no such route: %s %s", r.Method, r.URL.Path)
		s.met.observe(r.Method+" "+r.URL.Path, t0)
	})
	return s
}

// Handler returns the instrumented route table.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops every design's edit queue and rejects further loads. Called
// after http.Server.Shutdown has drained in-flight requests.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	designs := make([]*design, 0, len(s.designs))
	for _, d := range s.designs {
		designs = append(designs, d)
	}
	s.designs = map[string]*design{}
	s.mu.Unlock()
	for _, d := range designs {
		d.close()
	}
}

func (s *Server) design(name string) (*design, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.designs[name]
	return d, ok
}

// --- request/response shapes ---

// LoadRequest is the PUT /designs/{name} body. Exactly one of Circuit (a
// built-in benchmark name) or Bench (ISCAS85 .bench text) selects the
// netlist; parasitics are extracted from a seeded placement.
type LoadRequest struct {
	Circuit string `json:"circuit,omitempty"`
	Bench   string `json:"bench,omitempty"`
	// Strength is the drive strength .bench mapping uses (default 2).
	Strength int `json:"strength,omitempty"`
	// Seed picks the placement used for parasitic extraction (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Epsilon is the incremental early-termination cutoff in seconds
	// (default 0 = bit-exact).
	Epsilon float64 `json:"epsilon,omitempty"`
	// InputSlewPs overrides the default primary-input transition (ps).
	InputSlewPs float64 `json:"input_slew_ps,omitempty"`
}

// EditRequest is the POST /designs/{name}/edits body.
type EditRequest struct {
	// Op is one of "resize", "swap", "set_input_slew", "set_net_parasitics".
	Op       string       `json:"op"`
	Gate     string       `json:"gate,omitempty"`
	Strength int          `json:"strength,omitempty"`
	Cell     string       `json:"cell,omitempty"`
	Net      string       `json:"net,omitempty"`
	SlewPs   float64      `json:"slew_ps,omitempty"`
	Tree     *rctree.Tree `json:"tree,omitempty"`
}

// DesignSummary is the GET /designs/{name} response.
type DesignSummary struct {
	Name      string             `json:"name"`
	Gates     int                `json:"gates"`
	Endpoints int                `json:"endpoints"`
	Version   uint64             `json:"version"`
	ArrivalPs map[string]float64 `json:"arrival_ps"` // sigma level → critical arrival
	Stats     incsta.Stats       `json:"stats"`
	HitRatio  float64            `json:"cache_hit_ratio"`
}

// PathSummary is one entry of the GET /designs/{name}/paths response.
type PathSummary struct {
	Endpoint    string             `json:"endpoint"`
	Launch      string             `json:"launch"`
	Stages      int                `json:"stages"`
	QuantilePs  map[string]float64 `json:"quantile_ps"`
	MeanDelayPs float64            `json:"mean_delay_ps"`
}

// EditResponse is the POST /designs/{name}/edits response.
type EditResponse struct {
	Version     uint64 `json:"version"`
	Op          string `json:"op"`
	Seeded      int    `json:"seeded"`
	Reevaluated int    `json:"reevaluated"`
	Cut         int    `json:"cut"`
	Endpoints   int    `json:"endpoints"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// editStatus maps an edit failure onto an HTTP status: typed rejections of
// malformed edits are the client's fault, everything else the server's.
func editStatus(err error) int {
	var ee *incsta.EditError
	switch {
	case errors.As(err, &ee):
		return http.StatusBadRequest
	case errors.Is(err, ErrDesignClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	designs := make(map[string]*design, len(s.designs))
	for n, d := range s.designs {
		designs[n] = d
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, designs)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.designs))
	for n := range s.designs {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string][]string{"designs": names})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req LoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad load request: %v", err)
		return
	}

	var nl *netlist.Netlist
	var err error
	switch {
	case req.Circuit != "" && req.Bench != "":
		httpError(w, http.StatusBadRequest, "give either circuit or bench, not both")
		return
	case req.Circuit != "":
		nl, err = circuits.ByName(req.Circuit)
	case req.Bench != "":
		nl, err = netlist.ParseBench(strings.NewReader(req.Bench), name,
			&netlist.BenchOptions{Strength: req.Strength})
	default:
		httpError(w, http.StatusBadRequest, "need a circuit name or bench text")
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "netlist: %v", err)
		return
	}

	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	cellLib := stdcell.NewLibrary(device.Default28nm())
	par := layout.Default28nm()
	pl, err := layout.Place(nl, par, seed)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "placement: %v", err)
		return
	}
	trees, err := layout.Extract(nl, cellLib, par, pl)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "extraction: %v", err)
		return
	}

	opt := sta.Options{InputSlew: req.InputSlewPs * 1e-12}
	eng, err := incsta.New(s.lib, nl, trees, incsta.Config{Options: opt, Epsilon: req.Epsilon})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "analysis: %v", err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if _, dup := s.designs[name]; dup {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "design %q already loaded (DELETE it first)", name)
		return
	}
	d := newDesign(name, eng)
	s.designs[name] = d
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, s.summarize(d))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	d, ok := s.designs[name]
	if ok {
		delete(s.designs, name)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no design %q", name)
		return
	}
	d.close()
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) summarize(d *design) DesignSummary {
	snap := d.eng.Snapshot()
	res := snap.Result()
	arr := make(map[string]float64, len(res.ArrivalQ))
	for n, v := range res.ArrivalQ {
		arr[strconv.Itoa(n)] = v * 1e12
	}
	st := snap.Stats()
	return DesignSummary{
		Name: d.name, Gates: d.eng.GateCount(), Endpoints: res.Endpoints,
		Version: snap.Version(), ArrivalPs: arr, Stats: st, HitRatio: st.CacheHitRatio(),
	}
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no design %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, s.summarize(d))
}

// GateInfo is one entry of the GET /designs/{name}/gates response — the
// names a client needs to address resize/swap edits.
type GateInfo struct {
	Name   string `json:"name"`
	Cell   string `json:"cell"`
	Output string `json:"output"`
}

func (s *Server) handleGates(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no design %q", r.PathValue("name"))
		return
	}
	nl, _ := d.eng.CopyDesign()
	gates := make([]GateInfo, len(nl.Gates))
	for i, g := range nl.Gates {
		gates[i] = GateInfo{Name: g.Name, Cell: g.Cell, Output: g.Output()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"design": d.name, "gates": gates})
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no design %q", r.PathValue("name"))
		return
	}
	k := 5
	if q := r.URL.Query().Get("k"); q != "" {
		var err error
		if k, err = strconv.Atoi(q); err != nil || k <= 0 {
			httpError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
	}
	snap := d.eng.Snapshot()
	paths, err := snap.WorstPaths(k)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "paths: %v", err)
		return
	}
	levels := d.eng.Options().Levels
	out := make([]PathSummary, len(paths))
	for i, p := range paths {
		q := make(map[string]float64, len(levels))
		for _, n := range levels {
			q[strconv.Itoa(n)] = p.Quantile(n) * 1e12
		}
		out[i] = PathSummary{
			Endpoint: p.Endpoint, Launch: p.Launch.String(), Stages: len(p.Stages),
			QuantilePs: q, MeanDelayPs: p.Mean() * 1e12,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": snap.Version(), "paths": out})
}

func (s *Server) handleSlacks(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no design %q", r.PathValue("name"))
		return
	}
	periodPs, err := strconv.ParseFloat(r.URL.Query().Get("period_ps"), 64)
	if err != nil || periodPs <= 0 {
		httpError(w, http.StatusBadRequest, "period_ps must be a positive number")
		return
	}
	level := 3
	if q := r.URL.Query().Get("level"); q != "" {
		if level, err = strconv.Atoi(q); err != nil {
			httpError(w, http.StatusBadRequest, "level must be an integer sigma level")
			return
		}
	}
	snap := d.eng.Snapshot()
	slacks, err := snap.EndpointSlacks(periodPs*1e-12, level)
	if err != nil {
		httpError(w, http.StatusBadRequest, "slacks: %v", err)
		return
	}
	wns := 0.0
	first := true
	out := make(map[string]float64, len(slacks))
	for key, sl := range slacks {
		out[key] = sl * 1e12
		if first || sl*1e12 < wns {
			wns = sl * 1e12
			first = false
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version": snap.Version(), "period_ps": periodPs, "level": level,
		"wns_ps": wns, "slacks_ps": out,
	})
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no design %q", r.PathValue("name"))
		return
	}
	var req EditRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad edit request: %v", err)
		return
	}
	var apply func() (*incsta.Report, error)
	switch req.Op {
	case "resize":
		apply = func() (*incsta.Report, error) { return d.eng.ResizeCell(req.Gate, req.Strength) }
	case "swap":
		apply = func() (*incsta.Report, error) { return d.eng.SwapCell(req.Gate, req.Cell) }
	case "set_input_slew":
		apply = func() (*incsta.Report, error) { return d.eng.SetInputSlew(req.Net, req.SlewPs*1e-12) }
	case "set_net_parasitics":
		apply = func() (*incsta.Report, error) { return d.eng.SetNetParasitics(req.Net, req.Tree) }
	default:
		httpError(w, http.StatusBadRequest, "unknown op %q", req.Op)
		return
	}
	rep, err := d.submit(r.Context(), apply)
	if err != nil {
		httpError(w, editStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EditResponse{
		Version: d.eng.Snapshot().Version(), Op: rep.Op,
		Seeded: rep.Seeded, Reevaluated: rep.Reevaluated,
		Cut: rep.Cut, Endpoints: rep.Endpoints,
	})
}
