// Package server is the long-lived timing-query service behind cmd/timingd:
// it loads the coefficient library once, hosts many named designs — each an
// incremental incsta.Engine — and serves concurrent timing queries over
// HTTP/JSON while ECO edits stream in. Edits are serialized per design
// through a single-writer queue; queries read immutable engine snapshots
// and never block on an edit in flight.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuits"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/incsta"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rctree"
	"repro/internal/sta"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
	"repro/internal/wal"
)

// Server hosts the designs. Create with New, call Recover when a Store is
// configured, mount Handler on an http.Server, Close on shutdown.
type Server struct {
	lib   *timinglib.File
	mux   *http.ServeMux
	met   *metrics
	store *Store
	adm   *admission
	node  *cluster.Node // nil = single-node

	maxBody    int64
	queueDepth int
	reqTimeout time.Duration
	ready      atomic.Bool

	// Per-design ownership leases (cluster mode; always non-nil so the
	// router can consult it unconditionally) and the promotion loop that
	// elects this node when a lease owner dies.
	leases       *cluster.LeaseTable
	promoteEvery time.Duration
	promoStop    chan struct{}
	promoDone    chan struct{}

	// Per-design election stand-down deadlines: a candidate whose claim was
	// refused because a strictly more caught-up copy exists stops claiming
	// for a few scan intervals, so its own rising promise watermark cannot
	// starve the better candidate's election.
	standMu   sync.Mutex
	standDown map[string]time.Time

	// Observability: the tracer request spans record into, the head-based
	// sampling rate for traces minted here (0 = only trace requests that
	// arrive with a sampled traceparent), the base logger request-scoped
	// loggers derive from, and the bounded slow-request log.
	tracer     *obs.Tracer
	sampleRate float64
	logger     *slog.Logger
	slow       *slowLog

	mu      sync.Mutex
	designs map[string]*design
	loading map[string]bool // names reserved by an in-flight load
	closed  bool

	// replica-held designs: shipped by their owner, served read-only.
	repMu sync.Mutex
	reps  map[string]*replicaState

	// recovery progress surfaced by /v1/readyz while not ready.
	recMu       sync.Mutex
	recTotal    int
	recDone     int
	recCurrent  string
	recoverHook func(name string) // test seam: called before each design replays
}

// Option customises New. The zero configuration behaves exactly like the
// historical in-memory server.
type Option func(*Server)

// WithStore makes the server durable: every design gets a write-ahead log
// and periodic snapshots under the store's root, and the server starts
// not-ready until Recover has replayed the persisted state.
func WithStore(st *Store) Option { return func(s *Server) { s.store = st } }

// WithAdmission bounds the queries evaluated concurrently across the server
// (a batch weighs its query count). Requests queue FIFO up to maxWait, then
// are rejected with 503 "overloaded". max <= 0 disables the limiter.
func WithAdmission(max int, maxWait time.Duration) Option {
	return func(s *Server) { s.adm = newAdmission(int64(max), maxWait) }
}

// WithMaxBodyBytes caps the PUT /designs/{name} request body (default 64
// MiB); larger bodies are rejected with 413 "payload_too_large". n <= 0
// keeps the default.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithEditQueueDepth sets each design's bounded pending-edit buffer
// (default 64); a full queue rejects edits with 503 "overloaded".
func WithEditQueueDepth(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.queueDepth = n
		}
	}
}

// WithCluster attaches a cluster membership view: the server routes every
// design-scoped request by the node's ring (serving, redirecting or
// proxying), ships snapshots of the designs it owns to their replicas, and
// accepts shipped snapshots on /v1/internal/replicate.
func WithCluster(n *cluster.Node) Option { return func(s *Server) { s.node = n } }

// WithPromotionInterval sets how often the promotion loop scans for designs
// whose lease owner has died (default 1s). Tests use short intervals.
func WithPromotionInterval(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.promoteEvery = d
		}
	}
}

// WithRequestTimeout puts a deadline on every request's context, so a stuck
// client or an oversized query cannot pin server resources forever. 0
// disables.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// WithTracer records request spans into tr instead of the process-wide
// obs.Trace — tests hosting several servers in one process give each its own.
func WithTracer(tr *obs.Tracer) Option {
	return func(s *Server) {
		if tr != nil {
			s.tracer = tr
		}
	}
}

// WithTraceSampling head-samples requests that arrive without a traceparent:
// rate is the probability each such request mints a sampled trace (clamped to
// [0,1], default 0 = trace only what upstream already sampled). An incoming
// traceparent always wins — its sampled flag is the upstream decision.
func WithTraceSampling(rate float64) Option {
	return func(s *Server) {
		s.sampleRate = min(max(rate, 0), 1)
	}
}

// WithLogger sets the base logger request-scoped loggers (request_id,
// trace_id attrs) derive from; default slog.Default().
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithSlowLogSize sets how many slowest requests GET /v1/debug/slow retains
// (default 32).
func WithSlowLogSize(n int) Option {
	return func(s *Server) { s.slow = newSlowLog(n) }
}

// log returns the server's base logger, falling back to the process default
// so SetupLogs after New still takes effect.
func (s *Server) log() *slog.Logger {
	if s.logger != nil {
		return s.logger
	}
	return slog.Default()
}

// defaultMaxBodyBytes caps design-load request bodies (64 MiB).
const defaultMaxBodyBytes = 64 << 20

// New builds a server around one coefficient library (loaded once, shared
// by every design).
func New(lib *timinglib.File, opts ...Option) *Server {
	s := &Server{
		lib:          lib,
		mux:          http.NewServeMux(),
		met:          newMetrics(),
		maxBody:      defaultMaxBodyBytes,
		designs:      map[string]*design{},
		loading:      map[string]bool{},
		reps:         map[string]*replicaState{},
		leases:       cluster.NewLeaseTable(),
		standDown:    map[string]time.Time{},
		promoteEvery: time.Second,
		tracer:       obs.Trace,
		slow:         newSlowLog(defaultSlowLogSize),
	}
	for _, o := range opts {
		o(s)
	}
	if s.store != nil && s.node != nil {
		// Promises must survive a crash: a restarted node that re-granted an
		// epoch it promised before the crash would break the at-most-one-
		// winner-per-epoch invariant the fencing rests on. The hook fires
		// concurrently from any handler, so snapshot and write happen under
		// one mutex: without it, a goroutine that snapshotted before another
		// mutation could rename its older snapshot last and erase a
		// just-granted promise from leases.json.
		var leaseSaveMu sync.Mutex
		s.leases.OnChange(func() {
			leaseSaveMu.Lock()
			defer leaseSaveMu.Unlock()
			if err := s.store.saveLeases(s.leases.Snapshot()); err != nil {
				mPersistErrors.Inc()
			}
		})
	}
	// A durable server answers readyz only after Recover has replayed its
	// persisted designs; an in-memory server has nothing to recover.
	s.ready.Store(s.store == nil)

	// ungated routes answer even before recovery completes (liveness,
	// readiness, metrics); everything else 503s with "not_ready" until then.
	ungated := map[string]bool{
		"GET /healthz": true, "GET /v1/healthz": true,
		"GET /v1/readyz": true, "GET /metrics": true,
		// Cluster introspection answers during recovery too, so peers and
		// operators can inspect a recovering node's ring view. The heartbeat
		// target must answer ungated or a recovering node would be ejected.
		"GET /v1/cluster": true, "GET /v1/cluster/route": true,
		"GET /v1/cluster/members": true, "GET /v1/cluster/designs/{name}": true,
		"GET /v1/internal/health": true,
		// Debug introspection: what made a recovering node slow matters too.
		"GET /v1/debug/slow": true,
	}
	route := func(pattern string, h func(http.ResponseWriter, *http.Request)) {
		gated := !ungated[pattern]
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			t0 := time.Now()
			if gated && !s.ready.Load() {
				retryAfter(w, time.Second)
				httpError(w, http.StatusServiceUnavailable, codeNotReady, "recovery in progress")
				s.met.observe(r, pattern, t0)
				return
			}
			if s.reqTimeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
			h(w, r)
			s.met.observe(r, pattern, t0)
		})
	}
	// legacy wraps a v1 handler for its pre-v1 route: same behaviour, plus
	// RFC 8594 deprecation headers pointing at the successor. A header shim
	// (rather than a redirect) keeps PUT/POST bodies working for old
	// clients, who migrate on their own schedule.
	legacy := func(h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=%q", r.URL.Path, "successor-version"))
			h(w, r)
		}
	}
	// api registers a resource route twice: under /v1 (canonical) and at the
	// bare path (deprecated shim). Each gets its own metrics label.
	api := func(method, path string, h func(http.ResponseWriter, *http.Request)) {
		route(method+" /v1"+path, h)
		route(method+" "+path, legacy(h))
	}
	// Infra endpoints stay unversioned; /v1 aliases serve probers that only
	// speak the versioned prefix.
	route("GET /healthz", s.handleHealth)
	route("GET /v1/healthz", s.handleHealth)
	route("GET /v1/readyz", s.handleReady)
	route("GET /metrics", s.handleMetrics)
	route("GET /v1/debug/slow", s.handleSlow)
	api("GET", "/designs", s.handleList)
	api("PUT", "/designs/{name}", s.handleLoad)
	api("DELETE", "/designs/{name}", s.handleDelete)
	api("GET", "/designs/{name}", s.admitted(s.handleSummary))
	api("GET", "/designs/{name}/gates", s.admitted(s.handleGates))
	api("GET", "/designs/{name}/paths", s.admitted(s.handlePaths))
	api("GET", "/designs/{name}/slacks", s.admitted(s.handleSlacks))
	api("POST", "/designs/{name}/edits", s.handleEdit)
	// Batch is v1-only: many queries against one pinned snapshot.
	route("POST /v1/designs/{name}/batch", s.handleBatch)
	// Cluster routes exist only when a cluster node is attached. The
	// /v1/internal/ surface is the versioned cluster-internal contract
	// (API.md "Cluster-internal API"): every request carries the sender's
	// identity and ownership epoch, and stale epochs are rejected with the
	// standard error envelope under code "stale_epoch".
	if s.node != nil {
		route("POST /v1/internal/replicate", s.handleReplicate)
		route("POST /v1/internal/edits", s.handleReplicateEdits)
		route("POST /v1/internal/lease/claim", s.handleLeaseClaim)
		route("POST /v1/internal/lease/adopt", s.handleLeaseAdopt)
		route("POST /v1/internal/members", s.handleInternalMembers)
		route("GET /v1/internal/health", s.handleInternalHealth)
		// Resource-shaped cluster admin API.
		route("GET /v1/cluster/members", s.handleMembersGet)
		route("POST /v1/cluster/members", s.handleMembersAdd)
		route("DELETE /v1/cluster/members/{peer...}", s.handleMembersRemove)
		route("GET /v1/cluster/designs/{name}", s.handleClusterDesign)
		// Deprecated aliases (RFC 8594 headers point at their successors).
		deprecated := func(successor string, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
			return func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Deprecation", "true")
				w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", successor, "successor-version"))
				h(w, r)
			}
		}
		route("GET /v1/cluster", deprecated("/v1/cluster/members", s.handleClusterStatus))
		route("GET /v1/cluster/route", deprecated("/v1/cluster/designs/{name}", s.handleClusterRoute))
	}
	// Catch-all for unregistered paths: a JSON 404, counted under the
	// bounded "other" series instead of minting a label per probed URL.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		httpError(w, http.StatusNotFound, codeUnknownRoute, "no such route: %s %s", r.Method, r.URL.Path)
		s.met.observe(r, r.Method+" "+r.URL.Path, t0)
	})
	if s.node != nil {
		s.promoStop = make(chan struct{})
		s.promoDone = make(chan struct{})
		go s.promotionLoop()
	}
	return s
}

// Handler returns the instrumented route table, wrapped in the correlation
// middleware (request IDs, trace propagation, access + slow logging). With a
// cluster node attached, design-scoped requests then pass the ring-aware
// router, which serves them locally, from a replica snapshot, or forwards
// them to the design's owner.
func (s *Server) Handler() http.Handler {
	var inner http.Handler = s.mux
	if s.node != nil {
		inner = http.HandlerFunc(s.routeCluster)
	}
	return s.correlate(inner)
}

// Close stops every design's edit queue and rejects further loads. Called
// after http.Server.Shutdown has drained in-flight requests.
func (s *Server) Close() {
	if s.promoStop != nil {
		select {
		case <-s.promoStop:
		default:
			close(s.promoStop)
		}
		<-s.promoDone
	}
	s.mu.Lock()
	s.closed = true
	designs := make([]*design, 0, len(s.designs))
	for _, d := range s.designs {
		designs = append(designs, d)
	}
	s.designs = map[string]*design{}
	s.mu.Unlock()
	for _, d := range designs {
		d.close()
	}
	s.repMu.Lock()
	reps := make([]*replicaState, 0, len(s.reps))
	for _, rep := range s.reps {
		reps = append(reps, rep)
	}
	s.reps = map[string]*replicaState{}
	s.repMu.Unlock()
	for _, rep := range reps {
		rep.mu.Lock()
		if rep.log != nil {
			rep.log.Close()
			rep.log = nil
		}
		rep.mu.Unlock()
	}
}

func (s *Server) design(name string) (*design, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.designs[name]
	return d, ok
}

// clusterSeq is the version an owned design reports in cluster mode
// (applied-edit seq + 1, continuous across promotion/recovery), or 0 in
// single-node mode — the sentinel the serve* helpers read as "use the
// engine's own version".
func (s *Server) clusterSeq(d *design) uint64 {
	if s.node == nil {
		return 0
	}
	return d.seq.Load() + 1
}

// --- request/response shapes ---

// LoadRequest is the PUT /designs/{name} body. Exactly one of Circuit (a
// built-in benchmark name) or Bench (ISCAS85 .bench text) selects the
// netlist; parasitics are extracted from a seeded placement.
type LoadRequest struct {
	Circuit string `json:"circuit,omitempty"`
	Bench   string `json:"bench,omitempty"`
	// Strength is the drive strength .bench mapping uses (default 2).
	Strength int `json:"strength,omitempty"`
	// Seed picks the placement used for parasitic extraction (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Epsilon is the incremental early-termination cutoff in seconds
	// (default 0 = bit-exact).
	Epsilon float64 `json:"epsilon,omitempty"`
	// InputSlewPs overrides the default primary-input transition (ps).
	InputSlewPs float64 `json:"input_slew_ps,omitempty"`
	// Corners optionally batches operating corners through the design's
	// engine: every edit re-propagates all of them in one pass, and queries
	// select one with ?corner=<name>. Corner 0 is the primary corner
	// unqualified queries read. Empty = single neutral corner.
	Corners []CornerSpec `json:"corners,omitempty"`
	// Parallelism is the wavefront worker count used by the engine's full
	// passes and re-propagation (0/1 = sequential; results are identical at
	// any value).
	Parallelism int `json:"parallelism,omitempty"`
}

// CornerSpec is the wire form of one operating corner.
type CornerSpec struct {
	// Name identifies the corner in queries; defaults to "corner<i>".
	Name string `json:"name,omitempty"`
	// InputSlewPs overrides the primary-input transition at this corner (ps,
	// 0 = keep the design default).
	InputSlewPs float64 `json:"input_slew_ps,omitempty"`
	// CapScale derates every parasitic capacitance the corner sees (0 = 1.0).
	CapScale float64 `json:"cap_scale,omitempty"`
}

// cornerSet converts the wire corners into the engine's CornerSet.
func cornerSet(specs []CornerSpec) sta.CornerSet {
	cs := sta.CornerSet{}
	for _, c := range specs {
		cs.Corners = append(cs.Corners, sta.Corner{
			Name:      c.Name,
			InputSlew: c.InputSlewPs * 1e-12,
			CapScale:  c.CapScale,
		})
	}
	return cs
}

// EditRequest is the POST /designs/{name}/edits body.
type EditRequest struct {
	// Op is one of "resize", "swap", "set_input_slew", "set_net_parasitics".
	Op       string       `json:"op"`
	Gate     string       `json:"gate,omitempty"`
	Strength int          `json:"strength,omitempty"`
	Cell     string       `json:"cell,omitempty"`
	Net      string       `json:"net,omitempty"`
	SlewPs   float64      `json:"slew_ps,omitempty"`
	Tree     *rctree.Tree `json:"tree,omitempty"`
}

// DesignSummary is the GET /v1/designs/{name} response.
type DesignSummary struct {
	Name      string             `json:"name"`
	Gates     int                `json:"gates"`
	Endpoints int                `json:"endpoints"`
	Version   uint64             `json:"version"`
	ArrivalPs map[string]float64 `json:"arrival_ps"` // sigma level → critical arrival
	Stats     incsta.Stats       `json:"stats"`
	HitRatio  float64            `json:"cache_hit_ratio"`
	// Corner is the corner this summary describes; Corners lists every
	// corner the design batches (absent for a single unnamed neutral corner).
	Corner  string   `json:"corner,omitempty"`
	Corners []string `json:"corners,omitempty"`
}

// PathSummary is one entry of the GET /designs/{name}/paths response.
type PathSummary struct {
	Endpoint    string             `json:"endpoint"`
	Launch      string             `json:"launch"`
	Stages      int                `json:"stages"`
	QuantilePs  map[string]float64 `json:"quantile_ps"`
	MeanDelayPs float64            `json:"mean_delay_ps"`
}

// EditResponse is the POST /designs/{name}/edits response.
type EditResponse struct {
	Version     uint64 `json:"version"`
	Op          string `json:"op"`
	Seeded      int    `json:"seeded"`
	Reevaluated int    `json:"reevaluated"`
	Cut         int    `json:"cut"`
	Endpoints   int    `json:"endpoints"`
}

// ErrorDetail is the unified v1 error envelope payload: a stable
// machine-readable code, a human-readable message, and optional detail
// (typically the underlying validation error).
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
}

// errorBody wraps every error response: {"error":{"code","message","detail"}}.
type errorBody struct {
	Error ErrorDetail `json:"error"`
}

// Stable error codes of the v1 API (see API.md).
const (
	codeInvalidRequest = "invalid_request"
	codeNotFound       = "not_found"
	codeUnknownRoute   = "unknown_route"
	codeConflict       = "already_exists"
	codeUnprocessable  = "load_failed"
	codeEditRejected   = "edit_rejected"
	codeTooLarge       = "batch_too_large"
	codeUnavailable    = "server_closed"
	codeInternal       = "internal"
	codeOverloaded     = "overloaded"
	codePayloadLarge   = "payload_too_large"
	codeNotReady       = "not_ready"
	// Cluster-mode codes: a forwarded request landed on a node that does not
	// own the design (ring views diverged mid-hop), the design's owner is
	// unreachable (circuit breaker open / transport failure), or the request
	// carried an ownership epoch below the receiver's adopted lease — the
	// sender is a fenced ex-owner and must stand down.
	codeWrongNode       = "wrong_node"
	codePeerUnavailable = "peer_unavailable"
	codeStaleEpoch      = "stale_epoch"
)

// retryAfter sets the Retry-After hint on a back-pressure 503 (rounded up
// to at least one second, the header's resolution).
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// httpErrorDetail is httpError with the wrapped cause split into the detail
// field.
func httpErrorDetail(w http.ResponseWriter, status int, code, message string, cause error) {
	body := errorBody{Error: ErrorDetail{Code: code, Message: message}}
	if cause != nil {
		body.Error.Detail = cause.Error()
	}
	writeJSON(w, status, body)
}

// editStatus maps an edit failure onto an HTTP status and error code: typed
// rejections of malformed edits are the client's fault, a full queue or
// closed design is back-pressure, everything else the server's.
func editStatus(err error) (int, string) {
	var ee *incsta.EditError
	switch {
	case errors.As(err, &ee):
		return http.StatusBadRequest, codeEditRejected
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable, codeOverloaded
	case errors.Is(err, errStaleEpoch):
		// The design was fenced mid-edit: ownership moved to a higher epoch.
		// Retryable — the router sends the retry to the new owner.
		return http.StatusServiceUnavailable, codeStaleEpoch
	case errors.Is(err, errUnreplicated):
		// Applied locally, acked by no replica: in doubt, retryable.
		return http.StatusServiceUnavailable, codePeerUnavailable
	case errors.Is(err, ErrDesignClosed):
		return http.StatusServiceUnavailable, codeUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, codeUnavailable
	default:
		return http.StatusInternalServerError, codeInternal
	}
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyStatus is the /v1/readyz body while recovery is still replaying:
// the error envelope every 503 carries, plus per-design progress so an
// operator watching a long recovery can see it move.
type readyStatus struct {
	Status           string      `json:"status"`
	DesignsTotal     int         `json:"designs_total"`
	DesignsRecovered int         `json:"designs_recovered"`
	Current          string      `json:"current,omitempty"` // design replaying right now
	Error            ErrorDetail `json:"error"`
}

// handleReady is the readiness probe: 503 "not_ready" until recovery has
// replayed every persisted design, so a load balancer does not route
// traffic at a server still rebuilding engines. The 503 body reports how
// far recovery has come (designs recovered / total, current design).
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		s.recMu.Lock()
		total, done, current := s.recTotal, s.recDone, s.recCurrent
		s.recMu.Unlock()
		retryAfter(w, time.Second)
		writeJSON(w, http.StatusServiceUnavailable, readyStatus{
			Status: "recovering", DesignsTotal: total, DesignsRecovered: done, Current: current,
			Error: ErrorDetail{
				Code:    codeNotReady,
				Message: fmt.Sprintf("recovery in progress (%d/%d designs)", done, total),
			},
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// admitted wraps a query handler with the global admission limiter (weight
// 1; batches weigh themselves inside handleBatch).
func (s *Server) admitted(h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	if s.adm == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.adm.acquire(r.Context(), 1) {
			mAdmissionRejected.Inc()
			retryAfter(w, s.adm.maxWait)
			httpError(w, http.StatusServiceUnavailable, codeOverloaded, "server at concurrent-query capacity")
			return
		}
		defer s.adm.release(1)
		h(w, r)
	}
}

// Recover rebuilds every design persisted in the store — snapshot load, one
// full analysis pass, WAL tail replay — then marks the server ready. Must be
// called (once) after New when a Store is configured; without a store it
// only flips readiness.
func (s *Server) Recover(ctx context.Context) error {
	if s.store == nil {
		s.ready.Store(true)
		return nil
	}
	ctx, span := obs.StartSpan(ctx, "server.recover")
	defer span.End()
	if s.node != nil {
		// Leases first: promises made before the crash must be honoured
		// before any claim or internal request is answered.
		m, err := s.store.loadLeases()
		if err != nil {
			return fmt.Errorf("server: recover leases: %w", err)
		}
		s.leases.Load(m)
		for name, li := range m {
			s.node.SetLeaseEpoch(name, li.Epoch)
		}
	}
	escaped, err := s.store.listDesigns()
	if err != nil {
		return fmt.Errorf("server: recover: %w", err)
	}
	valid := escaped[:0]
	for _, esc := range escaped {
		if s.store.hasSnapshot(esc) {
			valid = append(valid, esc)
		}
		// else: debris — crash mid-create or mid-delete, never acked
	}
	s.recMu.Lock()
	s.recTotal, s.recDone, s.recCurrent = len(valid), 0, ""
	s.recMu.Unlock()
	for _, esc := range valid {
		display := esc
		if name, derr := url.PathUnescape(esc); derr == nil {
			display = name
		}
		s.recMu.Lock()
		s.recCurrent = display
		s.recMu.Unlock()
		if s.recoverHook != nil {
			s.recoverHook(display)
		}
		if err := s.recoverDesign(ctx, esc); err != nil {
			return fmt.Errorf("server: recover %s: %w", esc, err)
		}
		s.recMu.Lock()
		s.recDone++
		s.recMu.Unlock()
	}
	s.recMu.Lock()
	s.recCurrent = ""
	s.recMu.Unlock()
	s.recoverReplicas(ctx)
	s.ready.Store(true)
	return nil
}

// recoverDesign rebuilds one design from its snapshot plus surviving WAL
// tail. Records the snapshot already includes (seq <= WALSeq) are skipped;
// edits the original submission rejected replay as the same typed rejection
// and are skipped identically.
func (s *Server) recoverDesign(ctx context.Context, escapedName string) error {
	ctx, span := obs.StartSpan(ctx, "server.recover.design")
	defer span.End()
	snap, err := s.store.loadSnapshot(escapedName)
	if err != nil {
		return err
	}
	span.SetAttr("design", snap.Name)
	eng, err := rebuildEngine(s.lib, snap)
	if err != nil {
		return fmt.Errorf("rebuild engine: %w", err)
	}
	replayed := 0
	dlog, res, err := s.store.openWAL(snap.Name, func(seq uint64, payload []byte) error {
		if seq <= snap.WALSeq {
			return nil
		}
		var ed incsta.Edit
		if err := json.Unmarshal(payload, &ed); err != nil {
			return fmt.Errorf("wal record %d: %w", seq, err)
		}
		if _, err := eng.ApplyEdit(ed); err != nil {
			var ee *incsta.EditError
			if errors.As(err, &ee) {
				return nil // rejected originally, rejected again: state unchanged
			}
			return fmt.Errorf("wal record %d: %w", seq, err)
		}
		replayed++
		return nil
	})
	if err != nil {
		return fmt.Errorf("open wal: %w", err)
	}
	// After a compaction the file is empty; keep appends past the snapshot's
	// high-water mark so sequence numbers never recycle.
	dlog.EnsureSeq(snap.WALSeq)
	mRecoveryReplayed.Add(uint64(replayed))
	span.SetAttr("replayed", replayed)
	span.SetAttr("wal_records", res.Records)
	if s.store.cfg.VerifyRecovery {
		if err := eng.VerifyFull(ctx); err != nil {
			dlog.Close()
			return fmt.Errorf("recovery verification: %w", err)
		}
	}
	d := newDesign(snap.Name, eng, dlog, s.store, s.queueDepth)
	if s.node != nil {
		// The replication seq is the snapshot's acked count plus the edits
		// the WAL replay just re-applied; the epoch is whatever the design
		// last owned under. In a multi-node cluster the recovered design
		// starts FENCED: this node may have been superseded while it was
		// down, so it must win a fresh election (promotion loop) before it
		// serves as owner again. A single-member cluster has nobody to ask.
		d.seq.Store(snap.EditSeq + uint64(replayed))
		d.epoch.Store(snap.Epoch)
		s.attachCluster(d)
		if len(s.node.Members()) > 1 {
			d.fenced.Store(true)
		} else {
			s.leases.Adopt(snap.Name, s.node.Self(), snap.Epoch)
			s.node.SetLeaseEpoch(snap.Name, snap.Epoch)
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		d.close()
		return errors.New("server closed during recovery")
	}
	s.designs[snap.Name] = d
	s.mu.Unlock()
	s.startShipping(d)
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	designs := make(map[string]*design, len(s.designs))
	for n, d := range s.designs {
		designs[n] = d
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, designs)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.designs))
	for n := range s.designs {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string][]string{"designs": names})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req LoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, codePayloadLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
			return
		}
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad load request", err)
		return
	}

	var nl *netlist.Netlist
	var err error
	switch {
	case req.Circuit != "" && req.Bench != "":
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "give either circuit or bench, not both")
		return
	case req.Circuit != "":
		nl, err = circuits.ByName(req.Circuit)
	case req.Bench != "":
		nl, err = netlist.ParseBench(strings.NewReader(req.Bench), name,
			&netlist.BenchOptions{Strength: req.Strength})
	default:
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "need a circuit name or bench text")
		return
	}
	if err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "netlist rejected", err)
		return
	}
	corners := cornerSet(req.Corners)
	if err := corners.Validate(); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "corners rejected", err)
		return
	}

	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	cellLib := stdcell.NewLibrary(device.Default28nm())
	par := layout.Default28nm()
	pl, err := layout.Place(nl, par, seed)
	if err != nil {
		httpErrorDetail(w, http.StatusUnprocessableEntity, codeUnprocessable, "placement failed", err)
		return
	}
	trees, err := layout.Extract(nl, cellLib, par, pl)
	if err != nil {
		httpErrorDetail(w, http.StatusUnprocessableEntity, codeUnprocessable, "extraction failed", err)
		return
	}

	opt := sta.Options{InputSlew: req.InputSlewPs * 1e-12}
	eng, err := incsta.New(s.lib, nl, trees, incsta.Config{
		Options: opt, Epsilon: req.Epsilon,
		Corners: corners, Parallelism: req.Parallelism,
	})
	if err != nil {
		httpErrorDetail(w, http.StatusUnprocessableEntity, codeUnprocessable, "analysis failed", err)
		return
	}

	// Reserve the name, persist the initial state (so a kill -9 a moment
	// after the 201 still recovers the design), then publish.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, codeUnavailable, "server shutting down")
		return
	}
	if _, dup := s.designs[name]; dup || s.loading[name] {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, codeConflict, "design %q already loaded (DELETE it first)", name)
		return
	}
	s.loading[name] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.loading, name)
		s.mu.Unlock()
	}()

	// In cluster mode a fresh design starts under a quorum-granted lease:
	// the load fails rather than create a design nobody is fenced against.
	// A claim can be refused by members still holding replica debris of a
	// previously deleted same-named design (missed tombstone); debris whose
	// reported owner granted this very claim is provably stale, so it is
	// tombstoned and the claim retried — without this, the PUT would 503
	// forever against copies nobody will ever clean up.
	var epoch uint64
	if s.node != nil {
		claimed := false
		for attempt := 0; attempt < 3 && !claimed; attempt++ {
			epoch = s.leases.NextEpoch(name)
			var debris []string
			claimed, debris = s.claimFreshLease(name, epoch)
			if claimed || len(debris) == 0 {
				break
			}
			s.sendTombstones(name, s.leases.NextEpoch(name), debris)
		}
		if !claimed {
			retryAfter(w, time.Second)
			httpError(w, http.StatusServiceUnavailable, codePeerUnavailable,
				"cannot claim ownership lease for %q (no quorum)", name)
			return
		}
		// Any stale local replica copy of the name is superseded by the
		// design being created under the freshly won epoch.
		s.dropReplica(name)
	}

	var dlog *wal.Log
	if s.store != nil {
		snap := snapshotOf(name, eng, 0)
		snap.Epoch = epoch
		if err := s.store.saveSnapshot(snap); err != nil {
			httpErrorDetail(w, http.StatusInternalServerError, codeInternal, "persisting design", err)
			return
		}
		if dlog, _, err = s.store.openWAL(name, nil); err != nil {
			httpErrorDetail(w, http.StatusInternalServerError, codeInternal, "opening design wal", err)
			return
		}
	}
	d := newDesign(name, eng, dlog, s.store, s.queueDepth)
	d.epoch.Store(epoch)
	s.attachCluster(d)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		d.close()
		httpError(w, http.StatusServiceUnavailable, codeUnavailable, "server shutting down")
		return
	}
	s.designs[name] = d
	s.mu.Unlock()
	if s.node != nil {
		s.leases.Adopt(name, s.node.Self(), epoch)
		s.node.SetLeaseEpoch(name, epoch)
		go s.announceLease(name, epoch)
	}
	s.startShipping(d)

	writeJSON(w, http.StatusCreated, s.summarize(d))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	d, ok := s.designs[name]
	if ok {
		delete(s.designs, name)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "no design %q", name)
		return
	}
	d.close()
	if s.store != nil {
		// Drop the persisted state too, or a restart would resurrect the
		// design the client just deleted.
		if err := s.store.removeDesign(name); err != nil {
			httpErrorDetail(w, http.StatusInternalServerError, codeInternal, "removing persisted design", err)
			return
		}
	}
	if s.node != nil {
		// Tombstone every copy so a deleted design does not linger as a
		// stale read-only replica, and drop the lease — the name starts a
		// fresh epoch sequence if reused. The tombstone is broadcast at a
		// fresh epoch claimed from this node's own watermark (one past
		// everything it has adopted or promised, computed before Forget
		// wipes the entry), so a replica that promised a concurrent claim
		// this node granted still accepts it instead of refusing
		// stale_epoch and serving the deleted design forever. Best effort:
		// a replica that still refuses (or misses the broadcast) is
		// reaped as provable debris if the name is ever loaded again.
		epoch := s.leases.NextEpoch(name)
		s.leases.Forget(name)
		s.node.ClearLeaseEpoch(name)
		go s.broadcastDelete(name, epoch)
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) summarize(d *design) DesignSummary {
	sum, _ := s.summarizeAt(d, d.eng.Snapshot(), 0)
	return sum
}

// summarizeAt builds the summary of one corner from a pinned snapshot.
func (s *Server) summarizeAt(d *design, snap *incsta.Snapshot, ci int) (DesignSummary, error) {
	res, err := snap.ResultAt(ci)
	if err != nil {
		return DesignSummary{}, err
	}
	arr := make(map[string]float64, len(res.ArrivalQ))
	for n, v := range res.ArrivalQ {
		arr[strconv.Itoa(n)] = v * 1e12
	}
	st := snap.Stats()
	sum := DesignSummary{
		Name: d.name, Gates: d.eng.GateCount(), Endpoints: res.Endpoints,
		Version: snap.Version(), ArrivalPs: arr, Stats: st, HitRatio: st.CacheHitRatio(),
	}
	if corners := snap.Corners(); len(corners) > 1 || corners[0] != (sta.Corner{}) {
		sum.Corner = corners[ci].Label(ci)
		for i, c := range corners {
			sum.Corners = append(sum.Corners, c.Label(i))
		}
	}
	return sum, nil
}

// cornerOf resolves the ?corner= query parameter against a pinned snapshot
// ("" = primary corner 0).
func cornerOf(snap *incsta.Snapshot, name string) (int, error) {
	ci, ok := snap.CornerIndex(name)
	if !ok {
		return 0, fmt.Errorf("unknown corner %q", name)
	}
	return ci, nil
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "no design %q", r.PathValue("name"))
		return
	}
	s.serveSummary(w, r, d, d.eng.Snapshot(), s.clusterSeq(d))
}

// serveSummary answers a summary query from a pinned snapshot. seq != 0
// overrides the reported version — a replica reports the shipped sequence
// number, not the version its rebuilt engine happens to count.
func (s *Server) serveSummary(w http.ResponseWriter, r *http.Request, d *design, snap *incsta.Snapshot, seq uint64) {
	ci, err := cornerOf(snap, r.URL.Query().Get("corner"))
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	sum, err := s.summarizeAt(d, snap, ci)
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "%v", err)
		return
	}
	if seq != 0 {
		sum.Version = seq
	}
	writeJSON(w, http.StatusOK, sum)
}

// GateInfo is one entry of the GET /designs/{name}/gates response — the
// names a client needs to address resize/swap edits.
type GateInfo struct {
	Name   string `json:"name"`
	Cell   string `json:"cell"`
	Output string `json:"output"`
}

func (s *Server) handleGates(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "no design %q", r.PathValue("name"))
		return
	}
	s.serveGates(w, d)
}

func (s *Server) serveGates(w http.ResponseWriter, d *design) {
	nl, _ := d.eng.CopyDesign()
	gates := make([]GateInfo, len(nl.Gates))
	for i, g := range nl.Gates {
		gates[i] = GateInfo{Name: g.Name, Cell: g.Cell, Output: g.Output()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"design": d.name, "gates": gates})
}

// pathsAt builds the k-worst-paths payload of one corner from a pinned
// snapshot — shared by the paths route and the batch endpoint.
func (s *Server) pathsAt(d *design, snap *incsta.Snapshot, ci, k int) (map[string]any, error) {
	paths, err := snap.WorstPathsAt(ci, k)
	if err != nil {
		return nil, err
	}
	levels := d.eng.Options().Levels
	out := make([]PathSummary, len(paths))
	for i, p := range paths {
		q := make(map[string]float64, len(levels))
		for _, n := range levels {
			q[strconv.Itoa(n)] = p.Quantile(n) * 1e12
		}
		out[i] = PathSummary{
			Endpoint: p.Endpoint, Launch: p.Launch.String(), Stages: len(p.Stages),
			QuantilePs: q, MeanDelayPs: p.Mean() * 1e12,
		}
	}
	return map[string]any{"version": snap.Version(), "paths": out}, nil
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "no design %q", r.PathValue("name"))
		return
	}
	s.servePaths(w, r, d, d.eng.Snapshot(), s.clusterSeq(d))
}

func (s *Server) servePaths(w http.ResponseWriter, r *http.Request, d *design, snap *incsta.Snapshot, seq uint64) {
	k := 5
	if q := r.URL.Query().Get("k"); q != "" {
		var err error
		if k, err = strconv.Atoi(q); err != nil || k <= 0 {
			httpError(w, http.StatusBadRequest, codeInvalidRequest, "k must be a positive integer")
			return
		}
	}
	ci, err := cornerOf(snap, r.URL.Query().Get("corner"))
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	payload, err := s.pathsAt(d, snap, ci, k)
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "paths: %v", err)
		return
	}
	if seq != 0 {
		payload["version"] = seq
	}
	writeJSON(w, http.StatusOK, payload)
}

// slacksAt builds the endpoint-slack payload of one corner from a pinned
// snapshot — shared by the slacks route and the batch endpoint.
func slacksAt(snap *incsta.Snapshot, ci int, periodPs float64, level int) (map[string]any, error) {
	slacks, err := snap.EndpointSlacksAt(ci, periodPs*1e-12, level)
	if err != nil {
		return nil, err
	}
	wns := 0.0
	first := true
	out := make(map[string]float64, len(slacks))
	for key, sl := range slacks {
		out[key] = sl * 1e12
		if first || sl*1e12 < wns {
			wns = sl * 1e12
			first = false
		}
	}
	return map[string]any{
		"version": snap.Version(), "period_ps": periodPs, "level": level,
		"wns_ps": wns, "slacks_ps": out,
	}, nil
}

func (s *Server) handleSlacks(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "no design %q", r.PathValue("name"))
		return
	}
	s.serveSlacks(w, r, d.eng.Snapshot(), s.clusterSeq(d))
}

func (s *Server) serveSlacks(w http.ResponseWriter, r *http.Request, snap *incsta.Snapshot, seq uint64) {
	periodPs, err := strconv.ParseFloat(r.URL.Query().Get("period_ps"), 64)
	if err != nil || periodPs <= 0 {
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "period_ps must be a positive number")
		return
	}
	level := 3
	if q := r.URL.Query().Get("level"); q != "" {
		if level, err = strconv.Atoi(q); err != nil {
			httpError(w, http.StatusBadRequest, codeInvalidRequest, "level must be an integer sigma level")
			return
		}
	}
	ci, err := cornerOf(snap, r.URL.Query().Get("corner"))
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "%v", err)
		return
	}
	payload, err := slacksAt(snap, ci, periodPs, level)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "slacks: %v", err)
		return
	}
	if seq != 0 {
		payload["version"] = seq
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "no design %q", r.PathValue("name"))
		return
	}
	if s.node != nil {
		// Fenced ex-owner: ownership moved to a higher epoch; the retry is
		// routed to the new owner. Minority partition: accepting the edit
		// could diverge from a majority-side owner — refuse.
		if d.fenced.Load() {
			li, _ := s.leases.Current(d.name)
			retryAfter(w, time.Second)
			httpError(w, http.StatusServiceUnavailable, codeStaleEpoch,
				"design ownership moved (lease owner %s, epoch %d); retry", li.Owner, li.Epoch)
			return
		}
		if !s.node.HasMajority() {
			retryAfter(w, time.Second)
			httpError(w, http.StatusServiceUnavailable, codePeerUnavailable,
				"this node cannot reach a cluster majority; refusing writes")
			return
		}
	}
	var req EditRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad edit request", err)
		return
	}
	switch req.Op {
	case incsta.OpResize, incsta.OpSwap, incsta.OpSetInputSlew, incsta.OpSetNetParasitics:
	default:
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "unknown op %q", req.Op)
		return
	}
	// The wire request becomes the engine's stable Edit record — exactly the
	// bytes the design's WAL appends and recovery replays.
	ed := incsta.Edit{
		Op: req.Op, Gate: req.Gate, Strength: req.Strength, Cell: req.Cell,
		Net: req.Net, Slew: req.SlewPs * 1e-12, Tree: req.Tree,
	}
	rep, err := d.submit(r.Context(), ed)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			mAdmissionRejected.Inc()
		}
		status, code := editStatus(err)
		if status == http.StatusServiceUnavailable {
			retryAfter(w, time.Second)
		}
		httpError(w, status, code, "%v", err)
		return
	}
	version := d.eng.Snapshot().Version()
	if s.node != nil {
		// Cluster mode reports applied-edit seq + 1: identical to the engine
		// version on an owner that never restarted, and — unlike the raw
		// engine count, which resets on a rebuild — continuous across
		// promotion and recovery.
		version = d.seq.Load() + 1
	}
	writeJSON(w, http.StatusOK, EditResponse{
		Version: version, Op: rep.Op,
		Seeded: rep.Seeded, Reevaluated: rep.Reevaluated,
		Cut: rep.Cut, Endpoints: rep.Endpoints,
	})
}

// maxBatchQueries bounds one batch request; larger batches are rejected with
// 413 batch_too_large rather than silently truncated.
const maxBatchQueries = 256

// BatchQuery is one query of a batch request. Kind selects the view
// ("summary", "paths" or "slacks"); the remaining fields mirror the query
// parameters of the corresponding single-query route.
type BatchQuery struct {
	Kind     string  `json:"kind"`
	Corner   string  `json:"corner,omitempty"`
	K        int     `json:"k,omitempty"`         // paths: how many (default 5)
	PeriodPs float64 `json:"period_ps,omitempty"` // slacks: clock period
	Level    *int    `json:"level,omitempty"`     // slacks: sigma level (default 3)
}

// BatchRequest asks for several views of one design at one consistent
// version: the server pins a single snapshot and serves every query from it.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchResult is the outcome of one batch query: either a result payload or
// a per-query error (a bad query does not fail its siblings).
type BatchResult struct {
	Kind   string       `json:"kind"`
	Corner string       `json:"corner,omitempty"`
	Result any          `json:"result,omitempty"`
	Error  *ErrorDetail `json:"error,omitempty"`
}

// BatchResponse carries every result plus the snapshot version they were all
// served from.
type BatchResponse struct {
	Version uint64        `json:"version"`
	Results []BatchResult `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	d, ok := s.design(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "no design %q", r.PathValue("name"))
		return
	}
	// One snapshot serves the whole batch: every answer reflects the same
	// edit version, however many edits land while we iterate.
	s.serveBatch(w, r, d, d.eng.Snapshot(), s.clusterSeq(d))
}

func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request, d *design, snap *incsta.Snapshot, seq uint64) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad batch request", err)
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "batch needs at least one query")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		httpError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
			"batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries)
		return
	}

	// Admission: a batch weighs its query count, so one huge batch cannot
	// slip past a limiter tuned for single queries.
	weight := int64(len(req.Queries))
	if !s.adm.acquire(r.Context(), weight) {
		mAdmissionRejected.Inc()
		retryAfter(w, s.adm.maxWait)
		httpError(w, http.StatusServiceUnavailable, codeOverloaded, "server at concurrent-query capacity")
		return
	}
	defer s.adm.release(weight)

	version := snap.Version()
	if seq != 0 {
		version = seq
	}
	resp := BatchResponse{Version: version, Results: make([]BatchResult, len(req.Queries))}
	for i, q := range req.Queries {
		// A disconnected or timed-out client gets no response; stop burning
		// CPU on the remaining queries.
		if err := r.Context().Err(); err != nil {
			return
		}
		br := BatchResult{Kind: q.Kind, Corner: q.Corner}
		br.Result, br.Error = s.batchQuery(d, snap, q)
		resp.Results[i] = br
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchQuery answers one query of a batch from the pinned snapshot.
func (s *Server) batchQuery(d *design, snap *incsta.Snapshot, q BatchQuery) (any, *ErrorDetail) {
	ci, err := cornerOf(snap, q.Corner)
	if err != nil {
		return nil, &ErrorDetail{Code: codeInvalidRequest, Message: err.Error()}
	}
	switch q.Kind {
	case "summary":
		sum, err := s.summarizeAt(d, snap, ci)
		if err != nil {
			return nil, &ErrorDetail{Code: codeInternal, Message: err.Error()}
		}
		return sum, nil
	case "paths":
		k := q.K
		if k == 0 {
			k = 5
		}
		if k < 0 {
			return nil, &ErrorDetail{Code: codeInvalidRequest, Message: "k must be a positive integer"}
		}
		payload, err := s.pathsAt(d, snap, ci, k)
		if err != nil {
			return nil, &ErrorDetail{Code: codeInternal, Message: "paths: " + err.Error()}
		}
		return payload, nil
	case "slacks":
		if q.PeriodPs <= 0 {
			return nil, &ErrorDetail{Code: codeInvalidRequest, Message: "period_ps must be a positive number"}
		}
		level := 3
		if q.Level != nil {
			level = *q.Level
		}
		payload, err := slacksAt(snap, ci, q.PeriodPs, level)
		if err != nil {
			return nil, &ErrorDetail{Code: codeInvalidRequest, Message: "slacks: " + err.Error()}
		}
		return payload, nil
	default:
		return nil, &ErrorDetail{Code: codeInvalidRequest,
			Message: fmt.Sprintf("unknown query kind %q (want summary, paths or slacks)", q.Kind)}
	}
}
