package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/incsta"
	"repro/internal/obs"
)

// hopHeader marks an intra-cluster forward. A request carrying it is never
// forwarded again: if it lands on a node that does not own the design, the
// two nodes' ring views have diverged and the client gets a retryable
// wrong_node error instead of a forwarding loop.
const hopHeader = "X-Timingd-Forward"

// replicaRefreshEvery re-ships a replica's snapshot after this many idle
// replication ticks even when the owner believes it is caught up — the
// self-healing path for a replica that restarted (losing its in-memory
// copy) without the owner noticing.
const replicaRefreshEvery = 10

// replicaState is one design shipped to this node by its owner, served
// read-only. In-memory only: a restarted replica re-converges from the
// owner's periodic re-ship.
type replicaState struct {
	mu    sync.Mutex
	eng   *incsta.Engine
	seq   uint64 // owner's snapshot version this state reproduces
	epoch uint64 // owner's boot epoch; a new epoch resets seq comparison
	from  string // owner that shipped it (introspection)
}

// view returns the engine and shipped sequence coherently.
func (rs *replicaState) view() (*incsta.Engine, uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.eng, rs.seq
}

// replicateRequest is the POST /v1/internal/replicate body: a full design
// snapshot at one sequence number, or a tombstone. Epoch distinguishes an
// owner's replication streams across restarts (engine versions restart
// after recovery, so Seq alone cannot order across a reboot).
type replicateRequest struct {
	Seq      uint64          `json:"seq"`
	Epoch    uint64          `json:"epoch"`
	Delete   bool            `json:"delete,omitempty"`
	Name     string          `json:"name,omitempty"` // delete only; otherwise Snapshot.Name
	Snapshot *designSnapshot `json:"snapshot,omitempty"`
}

// replicateResponse acknowledges a shipment with the replica's resulting
// sequence (equal to the request's on apply; the newer local one on skip).
type replicateResponse struct {
	Design  string `json:"design"`
	Seq     uint64 `json:"seq"`
	Applied bool   `json:"applied"`
}

// --- cluster-aware router ---

// designPathName extracts the design name from a design-scoped path
// (/designs/{name}[/...] or /v1/designs/{name}[/...]).
func designPathName(path string) (string, bool) {
	p := strings.TrimPrefix(path, "/v1")
	rest, ok := strings.CutPrefix(p, "/designs/")
	if !ok || rest == "" {
		return "", false
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	name, err := url.PathUnescape(rest)
	if err != nil || name == "" {
		return "", false
	}
	return name, true
}

// isReadRequest reports whether a design-scoped request is a read a replica
// may serve: any GET, plus the batch POST.
func isReadRequest(r *http.Request) bool {
	return r.Method == http.MethodGet ||
		(r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/batch"))
}

// routeCluster is the Handler entry point in cluster mode. Requests outside
// /designs/{name} go straight to the local mux; design-scoped requests are
// routed by the ring — served locally when this node owns the design, from
// the shipped replica snapshot for reads on a replica, forwarded to the
// owner otherwise.
func (s *Server) routeCluster(w http.ResponseWriter, r *http.Request) {
	name, ok := designPathName(r.URL.Path)
	if !ok {
		s.mux.ServeHTTP(w, r)
		return
	}
	owner, isOwner, isReplica := s.node.Role(name)
	if isOwner {
		// Failover read path: this node now owns a design it never loaded
		// (the previous owner died) but still holds the shipped replica
		// copy — serve reads stale rather than 404.
		if _, loaded := s.design(name); !loaded && isReadRequest(r) && s.replica(name) != nil {
			s.serveReplica(w, r, name)
			return
		}
		s.mux.ServeHTTP(w, r)
		return
	}
	if isReplica && isReadRequest(r) && s.replica(name) != nil {
		s.serveReplica(w, r, name)
		return
	}
	s.forward(w, r, owner)
}

// replica returns this node's shipped copy of name, nil if none.
func (s *Server) replica(name string) *replicaState {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return s.reps[name]
}

// serveReplica answers a read from the shipped snapshot, with the same
// ready-gating, timeout, admission and metrics treatment the mux applies,
// and the shipped sequence number reported as the payload version.
func (s *Server) serveReplica(w http.ResponseWriter, r *http.Request, name string) {
	t0 := time.Now()
	p := strings.TrimPrefix(r.URL.Path, "/v1")
	sub := strings.TrimPrefix(p, "/designs/")
	if i := strings.IndexByte(sub, '/'); i >= 0 {
		sub = sub[i:]
	} else {
		sub = ""
	}
	var pattern string
	switch {
	case r.Method == http.MethodGet && sub == "":
		pattern = "GET /v1/designs/{name}"
	case r.Method == http.MethodGet && sub == "/gates":
		pattern = "GET /v1/designs/{name}/gates"
	case r.Method == http.MethodGet && sub == "/paths":
		pattern = "GET /v1/designs/{name}/paths"
	case r.Method == http.MethodGet && sub == "/slacks":
		pattern = "GET /v1/designs/{name}/slacks"
	case r.Method == http.MethodPost && sub == "/batch":
		pattern = "POST /v1/designs/{name}/batch"
	default:
		httpError(w, http.StatusNotFound, codeUnknownRoute, "no such route: %s %s", r.Method, r.URL.Path)
		s.met.observe(r, r.Method+" "+r.URL.Path, t0)
		return
	}
	defer s.met.observe(r, pattern, t0)
	if !s.ready.Load() {
		retryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, codeNotReady, "recovery in progress")
		return
	}
	if s.reqTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	rep := s.replica(name)
	if rep == nil {
		httpError(w, http.StatusNotFound, codeNotFound, "no design %q", name)
		return
	}
	eng, seq := rep.view()
	// A replica-held design gets a thin design shell: the payload builders
	// only touch name and engine; its edit machinery stays nil because edits
	// never route here.
	d := &design{name: name, eng: eng}
	snap := eng.Snapshot()
	if pattern != "POST /v1/designs/{name}/batch" && s.adm != nil {
		if !s.adm.acquire(r.Context(), 1) {
			mAdmissionRejected.Inc()
			retryAfter(w, s.adm.maxWait)
			httpError(w, http.StatusServiceUnavailable, codeOverloaded, "server at concurrent-query capacity")
			return
		}
		defer s.adm.release(1)
	}
	switch pattern {
	case "GET /v1/designs/{name}":
		s.serveSummary(w, r, d, snap, seq)
	case "GET /v1/designs/{name}/gates":
		s.serveGates(w, d)
	case "GET /v1/designs/{name}/paths":
		s.servePaths(w, r, d, snap, seq)
	case "GET /v1/designs/{name}/slacks":
		s.serveSlacks(w, r, snap, seq)
	case "POST /v1/designs/{name}/batch":
		s.serveBatch(w, r, d, snap, seq)
	}
}

// forward routes a request this node cannot serve to the design's owner:
// a 307 redirect by default, a single-hop proxy behind -cluster-proxy.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, owner string) {
	t0 := time.Now()
	pattern := "forward " + r.Method
	defer s.met.observe(r, pattern, t0)
	if from := r.Header.Get(hopHeader); from != "" {
		httpError(w, http.StatusMisdirectedRequest, codeWrongNode,
			"node %s does not own this design (forwarded from %s; ring views diverged, retry)",
			s.node.Self(), from)
		return
	}
	if !s.ready.Load() {
		retryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, codeNotReady, "recovery in progress")
		return
	}
	if owner == "" {
		retryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, codePeerUnavailable,
			"no alive owner for this design")
		return
	}
	s.node.NoteForward(owner)
	if !s.node.Proxy() {
		loc := owner + r.URL.RequestURI()
		w.Header().Set("Location", loc)
		writeJSON(w, http.StatusTemporaryRedirect, map[string]string{
			"owner": owner, "location": loc,
		})
		return
	}
	br := s.node.Breaker(owner)
	if br != nil && !br.Allow() {
		retryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, codePeerUnavailable,
			"owner %s unavailable (circuit open)", owner)
		return
	}
	ctx := r.Context()
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
		defer cancel()
	}
	// The proxy hop is its own span: the owner's request span becomes its
	// child via the refreshed traceparent on the outgoing request.
	ctx, span := s.tracer.StartSpan(ctx, "proxy_forward",
		obs.A("owner", owner), obs.A("method", r.Method))
	defer span.End()
	req, err := http.NewRequestWithContext(ctx, r.Method, owner+r.URL.RequestURI(), r.Body)
	if err != nil {
		httpErrorDetail(w, http.StatusInternalServerError, codeInternal, "building forward request", err)
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(hopHeader, s.node.Self())
	if tc, ok := obs.TraceFromContext(ctx); ok && tc.Propagatable() {
		req.Header.Set(headerTraceparent, tc.Traceparent())
	}
	resp, err := s.node.Client().Do(req)
	if err != nil {
		if br != nil {
			br.Record(false)
		}
		s.node.NoteForwardError(owner)
		retryAfter(w, time.Second)
		httpError(w, http.StatusBadGateway, codePeerUnavailable,
			"forwarding to owner %s failed: %v", owner, err)
		return
	}
	defer resp.Body.Close()
	if br != nil {
		br.Record(resp.StatusCode < http.StatusInternalServerError)
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		s.node.NoteForwardError(owner)
	}
	span.SetAttr("status", resp.StatusCode)
	// The peer's headers win over any the local middleware pre-set (its
	// Retry-After, its echoed correlation headers): replace per key rather
	// than append, or the client would see duplicate X-Request-ID /
	// traceparent lines on proxied responses.
	for k, vs := range resp.Header {
		w.Header().Del(k)
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// --- replication: owner side ---

// startShipping launches the snapshot-shipping loop for a design when a
// cluster node is attached. The loop exits with the design.
func (s *Server) startShipping(d *design) {
	if s.node == nil {
		return
	}
	go s.shipLoop(d)
}

func (s *Server) shipLoop(d *design) {
	iv := s.node.ReplicateInterval()
	t := time.NewTicker(iv)
	defer t.Stop()
	acked := map[string]uint64{}       // peer → last sequence it acknowledged
	lastShip := map[string]time.Time{} // peer → last successful shipment
	for {
		select {
		case <-d.quit:
			return
		case <-t.C:
			s.shipDesign(d, acked, lastShip)
		}
	}
}

// shipDesign publishes d's current snapshot to every replica that is
// behind (or stale past the refresh window). Shipping is idempotent — the
// replica skips sequences it already has — and per-peer circuit breakers
// keep a dead replica from stalling the loop.
func (s *Server) shipDesign(d *design, acked map[string]uint64, lastShip map[string]time.Time) {
	if _, isOwner, _ := s.node.Role(d.name); !isOwner {
		return // ring moved ownership (e.g. we are a rejoined ex-owner): stop publishing
	}
	_, replicas := s.node.Placement(d.name)
	if len(replicas) == 0 {
		return
	}
	// Capture a coherent (sequence, design copy) pair: CopyDesign locks the
	// engine, but an edit may commit between the version read and the copy,
	// so retry until the version is stable around the copy.
	var snap *designSnapshot
	var seq uint64
	for attempt := 0; attempt < 3 && snap == nil; attempt++ {
		v := d.eng.Snapshot().Version()
		cand := snapshotOf(d.name, d.eng, 0)
		if d.eng.Snapshot().Version() == v {
			snap, seq = cand, v
		}
	}
	if snap == nil {
		return // edit storm; next tick
	}
	iv := s.node.ReplicateInterval()
	// Shipments are head-sampled like user requests: a sampled shipment's
	// span links owner→replica through the traceparent postReplicate sends.
	shipCtx := context.Background()
	if s.sampleRate > 0 && rand.Float64() < s.sampleRate {
		shipCtx = obs.ContextWithTrace(shipCtx, obs.NewTraceContext(true))
	}
	var payload []byte
	for _, peer := range replicas {
		if peer == s.node.Self() {
			continue
		}
		s.node.SetReplicationLag(peer, float64(seq-min64(acked[peer], seq)))
		fresh := time.Since(lastShip[peer]) < replicaRefreshEvery*iv
		if acked[peer] >= seq && fresh {
			continue
		}
		br := s.node.Breaker(peer)
		if br != nil && !br.Allow() {
			continue
		}
		if payload == nil {
			var err error
			if payload, err = json.Marshal(replicateRequest{
				Seq: seq, Epoch: s.bootID, Snapshot: snap,
			}); err != nil {
				return
			}
		}
		ctx, span := s.tracer.StartSpan(shipCtx, "replicate_ship",
			obs.A("design", d.name), obs.A("peer", peer), obs.A("seq", seq))
		resp, err := s.postReplicate(ctx, peer, payload)
		span.SetAttr("ok", err == nil)
		span.End()
		if err != nil {
			if br != nil {
				br.Record(false)
			}
			s.node.NoteForwardError(peer)
			continue
		}
		if br != nil {
			br.Record(true)
		}
		acked[peer] = resp.Seq
		lastShip[peer] = time.Now()
		s.node.NoteShipped(peer)
		s.node.SetReplicationLag(peer, float64(seq-min64(resp.Seq, seq)))
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// postReplicate ships one replicate payload to peer and decodes the ack.
// The request is marked cluster-internal (kept out of the peer's user-request
// metrics), names its sender via hopHeader, and carries ctx's trace position
// so the peer's ingest span links under the shipment span.
func (s *Server) postReplicate(ctx context.Context, peer string, payload []byte) (*replicateResponse, error) {
	timeout := 2 * s.node.ReplicateInterval()
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		peer+"/v1/internal/replicate", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.InternalHeader, "replicate")
	req.Header.Set(hopHeader, s.node.Self())
	if tc, ok := obs.TraceFromContext(ctx); ok && tc.Propagatable() {
		req.Header.Set(headerTraceparent, tc.Traceparent())
	}
	resp, err := s.node.Client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("replicate to %s: status %d: %s", peer, resp.StatusCode, body)
	}
	var ack replicateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// broadcastDelete tombstones a deleted design on its replicas.
func (s *Server) broadcastDelete(name string) {
	_, replicas := s.node.Placement(name)
	payload, err := json.Marshal(replicateRequest{Delete: true, Name: name, Epoch: s.bootID})
	if err != nil {
		return
	}
	for _, peer := range replicas {
		if peer == s.node.Self() {
			continue
		}
		_, _ = s.postReplicate(context.Background(), peer, payload)
	}
}

// --- replication: replica side ---

// handleReplicate accepts a shipped snapshot (or tombstone) from a design's
// owner. Idempotent by (epoch, seq): a sequence at or below the replica's
// current one for the same owner epoch is skipped, so re-ships and races
// between periodic publishes are harmless.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req replicateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad replicate request", err)
		return
	}
	if req.Delete {
		if req.Name == "" {
			httpError(w, http.StatusBadRequest, codeInvalidRequest, "delete needs a design name")
			return
		}
		s.repMu.Lock()
		delete(s.reps, req.Name)
		s.repMu.Unlock()
		writeJSON(w, http.StatusOK, replicateResponse{Design: req.Name, Applied: true})
		return
	}
	if req.Snapshot == nil || req.Snapshot.Name == "" || req.Seq == 0 {
		httpError(w, http.StatusBadRequest, codeInvalidRequest,
			"replicate needs a snapshot with a name and a non-zero seq")
		return
	}
	name := req.Snapshot.Name
	s.repMu.Lock()
	rep := s.reps[name]
	if rep == nil {
		rep = &replicaState{}
		s.reps[name] = rep
	}
	s.repMu.Unlock()
	// Serialize rebuilds per design; concurrent ships of other designs
	// proceed independently.
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.eng != nil && rep.epoch == req.Epoch && req.Seq <= rep.seq {
		s.node.NoteReplicateSkipped()
		writeJSON(w, http.StatusOK, replicateResponse{Design: name, Seq: rep.seq, Applied: false})
		return
	}
	eng, err := rebuildEngine(s.lib, req.Snapshot)
	if err != nil {
		httpErrorDetail(w, http.StatusUnprocessableEntity, codeUnprocessable,
			"rebuilding replicated design", err)
		return
	}
	rep.eng, rep.seq, rep.epoch, rep.from = eng, req.Seq, req.Epoch, r.Header.Get(hopHeader)
	s.node.NoteReplicateApplied()
	writeJSON(w, http.StatusOK, replicateResponse{Design: name, Seq: req.Seq, Applied: true})
}

// --- introspection ---

// clusterDesign is one design row of the /v1/cluster payload.
type clusterDesign struct {
	Name  string `json:"name"`
	Role  string `json:"role"` // "owner" or "replica"
	Seq   uint64 `json:"seq,omitempty"`
	Owner string `json:"owner,omitempty"` // replicas: who ships to us
}

// handleClusterStatus reports this node's membership view: peer health,
// breaker states, and the designs it owns or replicates.
func (s *Server) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	owned := make([]string, 0, len(s.designs))
	for n := range s.designs {
		owned = append(owned, n)
	}
	s.mu.Unlock()
	designs := make([]clusterDesign, 0, len(owned))
	for _, n := range owned {
		designs = append(designs, clusterDesign{Name: n, Role: "owner"})
	}
	s.repMu.Lock()
	for n, rep := range s.reps {
		rep.mu.Lock()
		designs = append(designs, clusterDesign{Name: n, Role: "replica", Seq: rep.seq, Owner: rep.from})
		rep.mu.Unlock()
	}
	s.repMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"self":    s.node.Self(),
		"proxy":   s.node.Proxy(),
		"peers":   s.node.Peers(),
		"designs": designs,
	})
}

// handleClusterRoute answers "which node owns ?design=<name>" — the lookup
// smoke tests and clients use to find a design's owner and replicas.
func (s *Server) handleClusterRoute(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("design")
	if name == "" {
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "need ?design=<name>")
		return
	}
	owner, replicas := s.node.Placement(name)
	writeJSON(w, http.StatusOK, map[string]any{
		"design": name, "owner": owner, "replicas": replicas,
	})
}
