package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/incsta"
	"repro/internal/obs"
	"repro/internal/wal"
)

// hopHeader carries the comma-separated chain of nodes a cluster-internal
// forward has passed through. One extra hop is allowed when it points at the
// known lease owner (ring and lease views can legitimately disagree during a
// handoff); anything longer means the views have diverged and the client
// gets a retryable wrong_node error instead of a forwarding loop.
const hopHeader = "X-Timingd-Forward"

// replicaRefreshEvery re-ships a replica's snapshot after this many idle
// replication ticks even when the owner believes it is caught up — the
// self-healing path for a replica that restarted (losing its in-memory
// copy) without the owner noticing.
const replicaRefreshEvery = 10

// replicaCompactEvery folds a durable replica's edit tail into a fresh
// snapshot after this many replicated edits, keeping its WAL short and a
// post-promotion recovery fast.
const replicaCompactEvery = 256

// errStaleEpoch is the in-process form of a stale_epoch rejection: a peer
// holding a higher ownership epoch refused our traffic. The design that hit
// it is fenced — it must stop acting as owner.
var errStaleEpoch = errors.New("server: stale ownership epoch (design fenced)")

// errUnreplicated reports an edit that applied locally but was acknowledged
// by no replica: durability on a single node only. The edit is NOT rolled
// back (at-least-once; replicas re-converge from the next snapshot ship) —
// the client sees a retryable 503 and must treat the edit as in doubt.
var errUnreplicated = errors.New("server: edit not acknowledged by any replica")

// replicaState is one design shipped to this node by its owner, served
// read-only. With a store attached the shipped snapshot and the replicated
// edit tail are also persisted under <root>/replicas/, so a restarted
// replica can be promoted from durable state without the (possibly dead)
// owner's help.
type replicaState struct {
	mu       sync.Mutex
	eng      *incsta.Engine
	seq      uint64   // owner's edit sequence this state reproduces
	epoch    uint64   // ownership epoch the state was shipped under
	from     string   // owner that shipped it (introspection)
	log      *wal.Log // nil = in-memory replica
	ingested int      // edits appended since the last durable compaction
}

// view returns the engine, replicated sequence and epoch coherently. The
// engine is nil after the state was transferred away by a promotion.
func (rs *replicaState) view() (*incsta.Engine, uint64, uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.eng, rs.seq, rs.epoch
}

// --- versioned internal wire types (see API.md "Cluster-internal API") ---

// replicateRequest is the POST /v1/internal/replicate body: a full design
// snapshot at one edit sequence, or a tombstone. Every shipment names its
// sender and the ownership epoch it ships under; a receiver that has adopted
// a higher epoch rejects it with 409 stale_epoch.
type replicateRequest struct {
	Seq      uint64          `json:"seq"`
	Epoch    uint64          `json:"epoch"`
	From     string          `json:"from,omitempty"`
	Delete   bool            `json:"delete,omitempty"`
	Name     string          `json:"name,omitempty"` // delete only; otherwise Snapshot.Name
	Snapshot *designSnapshot `json:"snapshot,omitempty"`
}

// replicateResponse acknowledges a shipment with the replica's resulting
// sequence (equal to the request's on apply; the newer local one on skip).
type replicateResponse struct {
	Design  string `json:"design"`
	Seq     uint64 `json:"seq"`
	Applied bool   `json:"applied"`
}

// editsRequest is the POST /v1/internal/edits body: one applied edit,
// streamed synchronously from the owner to each replica before the client's
// edit is acknowledged. Seq must be exactly the replica's sequence + 1 under
// the same epoch; anything else is answered applied=false and the owner
// falls back to a full snapshot ship.
type editsRequest struct {
	Design  string          `json:"design"`
	Seq     uint64          `json:"seq"`
	Epoch   uint64          `json:"epoch"`
	From    string          `json:"from,omitempty"`
	Payload json.RawMessage `json:"payload"`
}

// editsResponse acknowledges one streamed edit.
type editsResponse struct {
	Design  string `json:"design"`
	Seq     uint64 `json:"seq"`
	Applied bool   `json:"applied"`
}

// leaseClaimRequest is the POST /v1/internal/lease/claim body: a candidate
// asking this node to promise it ownership of Design at Epoch. Basis is how
// caught-up the candidate's copy is — a node whose own copy is strictly
// ahead refuses, so the most-caught-up replica wins the election.
type leaseClaimRequest struct {
	Design     string `json:"design"`
	Epoch      uint64 `json:"epoch"`
	From       string `json:"from"`
	BasisEpoch uint64 `json:"basis_epoch"`
	BasisSeq   uint64 `json:"basis_seq"`
}

// leaseClaimResponse answers a claim: whether the promise was granted, this
// node's own basis for the design, and its current lease view (so a refused
// candidate learns who owns the design and at which epoch).
type leaseClaimResponse struct {
	Design     string            `json:"design"`
	Granted    bool              `json:"granted"`
	BasisEpoch uint64            `json:"basis_epoch"`
	BasisSeq   uint64            `json:"basis_seq"`
	Lease      cluster.LeaseInfo `json:"lease"`
}

// leaseAdoptRequest is the POST /v1/internal/lease/adopt body: an election
// winner announcing the lease it now holds. Advisory — replication traffic
// carries the same epoch and eventually teaches every replica — but members
// outside the design's replica set never see that traffic, and without the
// announcement they would keep routing to the dead previous owner.
type leaseAdoptRequest struct {
	Design string `json:"design"`
	Owner  string `json:"owner"`
	Epoch  uint64 `json:"epoch"`
	From   string `json:"from,omitempty"`
}

// membersRequest is the POST /v1/internal/members body: the sender's full
// membership list, applied wholesale (additions and removals) and never
// re-broadcast by the receiver.
type membersRequest struct {
	Members []string `json:"members"`
	From    string   `json:"from,omitempty"`
}

// staleEpochBody is the 409 stale_epoch response payload: the standard
// error envelope plus the receiver's current lease, so the fenced sender
// can adopt it and stand down.
type staleEpochBody struct {
	Error ErrorDetail `json:"error"`
	Owner string      `json:"owner,omitempty"`
	Epoch uint64      `json:"epoch"`
}

// writeStaleEpoch rejects a cluster-internal request carrying an epoch below
// this node's adopted lease.
func (s *Server) writeStaleEpoch(w http.ResponseWriter, design string, li cluster.LeaseInfo) {
	s.node.NoteFenced()
	writeJSON(w, http.StatusConflict, staleEpochBody{
		Error: ErrorDetail{
			Code: codeStaleEpoch,
			Message: fmt.Sprintf("stale epoch for design %q: current lease is owner %s epoch %d",
				design, li.Owner, li.Epoch),
		},
		Owner: li.Owner,
		Epoch: li.Epoch,
	})
}

// --- cluster-aware router ---

// designPathName extracts the design name from a design-scoped path
// (/designs/{name}[/...] or /v1/designs/{name}[/...]).
func designPathName(path string) (string, bool) {
	p := strings.TrimPrefix(path, "/v1")
	rest, ok := strings.CutPrefix(p, "/designs/")
	if !ok || rest == "" {
		return "", false
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	name, err := url.PathUnescape(rest)
	if err != nil || name == "" {
		return "", false
	}
	return name, true
}

// isReadRequest reports whether a design-scoped request is a read a replica
// may serve: any GET, plus the batch POST.
func isReadRequest(r *http.Request) bool {
	return r.Method == http.MethodGet ||
		(r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/batch"))
}

// routeCluster is the Handler entry point in cluster mode. Requests outside
// /designs/{name} go straight to the local mux; design-scoped requests are
// routed by lease first, ring second: a design this node owns (loaded, not
// fenced) is served locally, reads on a held replica copy are served from
// it, and everything else is forwarded to the lease owner — falling back to
// the ring owner while no lease exists yet.
func (s *Server) routeCluster(w http.ResponseWriter, r *http.Request) {
	name, ok := designPathName(r.URL.Path)
	if !ok {
		s.mux.ServeHTTP(w, r)
		return
	}
	if d, loaded := s.design(name); loaded && !d.fenced.Load() {
		s.mux.ServeHTTP(w, r)
		return
	}
	owner, isOwner, isReplica := s.node.Role(name)
	if (isOwner || isReplica) && isReadRequest(r) && s.replica(name) != nil {
		// Replica (or failover) read path: serve the shipped copy locally,
		// stale rather than a hop or a 404.
		s.serveReplica(w, r, name)
		return
	}
	self := s.node.Self()
	target := ""
	li, haveLease := s.leases.Current(name)
	switch {
	case haveLease && li.Owner != "" && li.Owner != self && s.node.AliveMember(li.Owner):
		target = li.Owner
	case (!haveLease || li.Owner == "") && !isOwner:
		target = owner
	case (!haveLease || li.Owner == "") && isOwner:
		// Ring owner with no lease: fresh-design operations (PUT load, 404s
		// for the rest) are handled locally.
		s.mux.ServeHTTP(w, r)
		return
	}
	if target == "" || target == self {
		// The lease owner is this node but the design is not loaded (recovery
		// or promotion in progress), or the owner is dead and no replica has
		// won the next epoch yet.
		retryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, codePeerUnavailable,
			"ownership of design %q is in transition; retry", name)
		return
	}
	s.forward(w, r, target, name)
}

// replica returns this node's shipped copy of name, nil if none.
func (s *Server) replica(name string) *replicaState {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return s.reps[name]
}

// serveReplica answers a read from the shipped copy, with the same
// ready-gating, timeout, admission and metrics treatment the mux applies,
// and the replicated edit sequence reported as the payload version.
func (s *Server) serveReplica(w http.ResponseWriter, r *http.Request, name string) {
	t0 := time.Now()
	p := strings.TrimPrefix(r.URL.Path, "/v1")
	sub := strings.TrimPrefix(p, "/designs/")
	if i := strings.IndexByte(sub, '/'); i >= 0 {
		sub = sub[i:]
	} else {
		sub = ""
	}
	var pattern string
	switch {
	case r.Method == http.MethodGet && sub == "":
		pattern = "GET /v1/designs/{name}"
	case r.Method == http.MethodGet && sub == "/gates":
		pattern = "GET /v1/designs/{name}/gates"
	case r.Method == http.MethodGet && sub == "/paths":
		pattern = "GET /v1/designs/{name}/paths"
	case r.Method == http.MethodGet && sub == "/slacks":
		pattern = "GET /v1/designs/{name}/slacks"
	case r.Method == http.MethodPost && sub == "/batch":
		pattern = "POST /v1/designs/{name}/batch"
	default:
		httpError(w, http.StatusNotFound, codeUnknownRoute, "no such route: %s %s", r.Method, r.URL.Path)
		s.met.observe(r, r.Method+" "+r.URL.Path, t0)
		return
	}
	defer s.met.observe(r, pattern, t0)
	if !s.ready.Load() {
		retryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, codeNotReady, "recovery in progress")
		return
	}
	if s.reqTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	rep := s.replica(name)
	if rep == nil {
		httpError(w, http.StatusNotFound, codeNotFound, "no design %q", name)
		return
	}
	eng, seq, _ := rep.view()
	if eng == nil {
		httpError(w, http.StatusNotFound, codeNotFound, "no design %q", name)
		return
	}
	// A replica-held design gets a thin design shell: the payload builders
	// only touch name and engine; its edit machinery stays nil because edits
	// never route here.
	d := &design{name: name, eng: eng}
	snap := eng.Snapshot()
	if pattern != "POST /v1/designs/{name}/batch" && s.adm != nil {
		if !s.adm.acquire(r.Context(), 1) {
			mAdmissionRejected.Inc()
			retryAfter(w, s.adm.maxWait)
			httpError(w, http.StatusServiceUnavailable, codeOverloaded, "server at concurrent-query capacity")
			return
		}
		defer s.adm.release(1)
	}
	// Version reporting matches the owner: replicated edits + 1 (the initial
	// full analysis), regardless of what the rebuilt engine counts.
	version := seq + 1
	switch pattern {
	case "GET /v1/designs/{name}":
		s.serveSummary(w, r, d, snap, version)
	case "GET /v1/designs/{name}/gates":
		s.serveGates(w, d)
	case "GET /v1/designs/{name}/paths":
		s.servePaths(w, r, d, snap, version)
	case "GET /v1/designs/{name}/slacks":
		s.serveSlacks(w, r, snap, version)
	case "POST /v1/designs/{name}/batch":
		s.serveBatch(w, r, d, snap, version)
	}
}

// forward routes a request this node cannot serve to target (the design's
// lease or ring owner): a 307 redirect by default, a proxy hop behind
// -cluster-proxy.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, target, name string) {
	t0 := time.Now()
	pattern := "forward " + r.Method
	defer s.met.observe(r, pattern, t0)
	if hops := r.Header.Get(hopHeader); hops != "" {
		// A forwarded request is re-forwarded at most once, and only toward
		// the known alive lease owner — the legitimate ring/lease divergence
		// window during an ownership handoff. Everything else is a loop.
		li, ok := s.leases.Current(name)
		allowed := ok && li.Owner == target && s.node.AliveMember(target) &&
			!strings.Contains(hops, ",")
		if !allowed {
			httpError(w, http.StatusMisdirectedRequest, codeWrongNode,
				"node %s does not own this design (forwarded via %s; ring views diverged, retry)",
				s.node.Self(), hops)
			return
		}
	}
	if !s.ready.Load() {
		retryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, codeNotReady, "recovery in progress")
		return
	}
	if target == "" {
		retryAfter(w, time.Second)
		httpError(w, http.StatusServiceUnavailable, codePeerUnavailable,
			"no alive owner for this design")
		return
	}
	s.node.NoteForward(target)
	if !s.node.Proxy() {
		loc := target + r.URL.RequestURI()
		w.Header().Set("Location", loc)
		writeJSON(w, http.StatusTemporaryRedirect, map[string]string{
			"owner": target, "location": loc,
		})
		return
	}
	br := s.node.Breaker(target)
	if br != nil && !br.Allow() {
		// Retry-After tracks the breaker's half-open deadline: the earliest
		// moment a retry could actually reach the peer.
		retryAfter(w, br.RetryAfter())
		httpError(w, http.StatusServiceUnavailable, codePeerUnavailable,
			"owner %s unavailable (circuit open)", target)
		return
	}
	ctx := r.Context()
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
		defer cancel()
	}
	// The proxy hop is its own span: the owner's request span becomes its
	// child via the refreshed traceparent on the outgoing request.
	ctx, span := s.tracer.StartSpan(ctx, "proxy_forward",
		obs.A("owner", target), obs.A("method", r.Method))
	defer span.End()
	req, err := http.NewRequestWithContext(ctx, r.Method, target+r.URL.RequestURI(), r.Body)
	if err != nil {
		httpErrorDetail(w, http.StatusInternalServerError, codeInternal, "building forward request", err)
		return
	}
	req.Header = r.Header.Clone()
	hops := r.Header.Get(hopHeader)
	if hops != "" {
		hops += ","
	}
	req.Header.Set(hopHeader, hops+s.node.Self())
	if tc, ok := obs.TraceFromContext(ctx); ok && tc.Propagatable() {
		req.Header.Set(headerTraceparent, tc.Traceparent())
	}
	resp, err := s.node.Client().Do(req)
	if err != nil {
		if br != nil {
			br.Record(false)
		}
		s.node.NoteForwardError(target)
		// The failure just opened (or re-opened) the breaker; hint the retry
		// at its cooldown.
		if br != nil {
			retryAfter(w, br.RetryAfter())
		} else {
			retryAfter(w, time.Second)
		}
		httpError(w, http.StatusBadGateway, codePeerUnavailable,
			"forwarding to owner %s failed: %v", target, err)
		return
	}
	defer resp.Body.Close()
	if br != nil {
		br.Record(resp.StatusCode < http.StatusInternalServerError)
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		s.node.NoteForwardError(target)
	}
	span.SetAttr("status", resp.StatusCode)
	// The peer's headers win over any the local middleware pre-set (its
	// Retry-After, its echoed correlation headers): replace per key rather
	// than append, or the client would see duplicate X-Request-ID /
	// traceparent lines on proxied responses.
	for k, vs := range resp.Header {
		w.Header().Del(k)
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// --- replication: owner side ---

// shipState tracks per-peer replication progress of one owned design:
// which edit sequence each peer has acknowledged and when it last acked.
// Shared by the synchronous edit stream and the periodic snapshot loop.
type shipState struct {
	mu       sync.Mutex
	acked    map[string]uint64
	lastShip map[string]time.Time
}

func newShipState() *shipState {
	return &shipState{acked: map[string]uint64{}, lastShip: map[string]time.Time{}}
}

// note records peer's acknowledgement of seq.
func (sh *shipState) note(peer string, seq uint64) {
	sh.mu.Lock()
	if seq > sh.acked[peer] {
		sh.acked[peer] = seq
	}
	sh.lastShip[peer] = time.Now()
	sh.mu.Unlock()
}

// progress returns peer's acked sequence and last-ack time.
func (sh *shipState) progress(peer string) (uint64, time.Time) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.acked[peer], sh.lastShip[peer]
}

// snapshot copies the full acked map (introspection).
func (sh *shipState) snapshot() map[string]uint64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make(map[string]uint64, len(sh.acked))
	for p, s := range sh.acked {
		out[p] = s
	}
	return out
}

// attachCluster wires an owned design into the replication machinery: the
// per-peer progress table and the synchronous edit-ship hook the writer
// loop calls after each applied edit. Must run before the design is
// published.
func (s *Server) attachCluster(d *design) {
	if s.node == nil {
		return
	}
	d.shp = newShipState()
	d.ship = func(seq uint64, payload []byte) error {
		return s.shipEdit(d, seq, payload)
	}
}

// replicaTargets is the set of alive peers that should hold a copy of name:
// its ring placement (owner slot plus replicas) minus this node. A promoted
// owner that is no longer the ring owner ships to the ring owner too, which
// is what lets ownership hand back cleanly once that node catches up.
func (s *Server) replicaTargets(name string) []string {
	owner, replicas := s.node.Placement(name)
	self := s.node.Self()
	out := make([]string, 0, len(replicas)+1)
	for _, p := range append([]string{owner}, replicas...) {
		if p == "" || p == self || !s.node.AliveMember(p) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// shipEdit synchronously replicates one applied edit to the design's
// replica set before the client's acknowledgement. Runs on the design's
// writer goroutine. A replica that did not apply the edit is repaired
// inline with a full snapshot ship before its ack counts; a stale_epoch
// rejection fences this owner and fails the edit; zero acknowledgements
// from a non-empty replica set fail the edit with errUnreplicated.
func (s *Server) shipEdit(d *design, seq uint64, payload []byte) error {
	if d.fenced.Load() {
		// A fence landed between the edit's apply and its ship: a higher
		// ownership epoch exists somewhere, so this node must not
		// acknowledge the write.
		return errStaleEpoch
	}
	targets := s.replicaTargets(d.name)
	if len(targets) == 0 {
		return nil
	}
	epoch := d.epoch.Load()
	body, err := json.Marshal(editsRequest{
		Design: d.name, Seq: seq, Epoch: epoch, From: s.node.Self(), Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("server: encode edit ship: %w", err)
	}
	acks := 0
	for _, peer := range targets {
		br := s.node.Breaker(peer)
		if br != nil && !br.Allow() {
			continue
		}
		ack, err := s.postEdits(context.Background(), peer, d.name, body)
		if errors.Is(err, errStaleEpoch) {
			// A higher epoch exists: we are no longer the owner. Fence; the
			// already-applied edit dies with the fencing.
			s.fenceFromStale(d, epoch+1)
			return errStaleEpoch
		}
		if err != nil {
			if br != nil {
				br.Record(false)
			}
			s.node.NoteForwardError(peer)
			continue
		}
		if br != nil {
			br.Record(true)
		}
		if !ack.Applied {
			// The replica did not store this edit — a gap, an epoch change,
			// or a copy fed divergent by a zombie ex-owner (which can report
			// Seq >= seq without ever holding our edit). Whatever sequence it
			// reports, a non-applied response never stands in for an ack:
			// repair with a full snapshot ship and count the ack only if that
			// lands. captureLocked (not capture) — we ARE the writer
			// goroutine the capture channel is served by.
			if err := s.shipSnapshotTo(context.Background(), d.name, d.captureLocked(), peer); err != nil {
				if errors.Is(err, errStaleEpoch) {
					s.fenceFromStale(d, epoch+1)
					return errStaleEpoch
				}
				continue
			}
		}
		acks++
		d.shp.note(peer, seq)
		s.node.NoteShipped(peer)
		s.node.SetReplicationLag(peer, 0)
	}
	if d.fenced.Load() {
		// Fenced while shipping (e.g. a claim was granted locally mid-loop):
		// the replica set may already be rebasing onto a higher epoch, so the
		// collected acks no longer guarantee the edit survives.
		return errStaleEpoch
	}
	if acks == 0 {
		return errUnreplicated
	}
	return nil
}

// startShipping launches the snapshot-shipping loop for a design when a
// cluster node is attached. The loop exits with the design.
func (s *Server) startShipping(d *design) {
	if s.node == nil {
		return
	}
	go s.shipLoop(d)
}

func (s *Server) shipLoop(d *design) {
	t := time.NewTicker(s.node.ReplicateInterval())
	defer t.Stop()
	for {
		select {
		case <-d.quit:
			return
		case <-t.C:
			s.shipDesign(d)
		}
	}
}

// shipDesign publishes d's current snapshot to every replica target that is
// behind (or stale past the refresh window). Shipping is idempotent — the
// replica skips sequences it already has — and per-peer circuit breakers
// keep a dead replica from stalling the loop.
func (s *Server) shipDesign(d *design) {
	if d.fenced.Load() {
		return // fenced ex-owner: stop publishing
	}
	targets := s.replicaTargets(d.name)
	if len(targets) == 0 {
		return
	}
	snap, err := d.capture()
	if err != nil {
		return // design closed
	}
	seq := snap.EditSeq
	iv := s.node.ReplicateInterval()
	// Shipments are head-sampled like user requests: a sampled shipment's
	// span links owner→replica through the traceparent postReplicate sends.
	shipCtx := context.Background()
	if s.sampleRate > 0 && rand.Float64() < s.sampleRate {
		shipCtx = obs.ContextWithTrace(shipCtx, obs.NewTraceContext(true))
	}
	var payload []byte
	for _, peer := range targets {
		acked, last := d.shp.progress(peer)
		s.node.SetReplicationLag(peer, float64(seq-min64(acked, seq)))
		fresh := time.Since(last) < replicaRefreshEvery*iv
		if acked >= seq && fresh {
			continue
		}
		br := s.node.Breaker(peer)
		if br != nil && !br.Allow() {
			continue
		}
		if payload == nil {
			var err error
			if payload, err = json.Marshal(replicateRequest{
				Seq: seq, Epoch: snap.Epoch, From: s.node.Self(), Snapshot: snap,
			}); err != nil {
				return
			}
		}
		ctx, span := s.tracer.StartSpan(shipCtx, "replicate_ship",
			obs.A("design", d.name), obs.A("peer", peer), obs.A("seq", seq))
		resp, err := s.postReplicate(ctx, peer, d.name, payload)
		span.SetAttr("ok", err == nil)
		span.End()
		if errors.Is(err, errStaleEpoch) {
			s.fenceFromStale(d, snap.Epoch+1)
			return
		}
		if err != nil {
			if br != nil {
				br.Record(false)
			}
			s.node.NoteForwardError(peer)
			continue
		}
		if br != nil {
			br.Record(true)
		}
		d.shp.note(peer, resp.Seq)
		s.node.NoteShipped(peer)
		s.node.SetReplicationLag(peer, float64(seq-min64(resp.Seq, seq)))
	}
}

// shipSnapshotTo ships one full snapshot to one peer (the inline gap-repair
// path of the synchronous edit stream).
func (s *Server) shipSnapshotTo(ctx context.Context, name string, snap *designSnapshot, peer string) error {
	payload, err := json.Marshal(replicateRequest{
		Seq: snap.EditSeq, Epoch: snap.Epoch, From: s.node.Self(), Snapshot: snap,
	})
	if err != nil {
		return err
	}
	_, err = s.postReplicate(ctx, peer, name, payload)
	return err
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// internalTimeout bounds one cluster-internal POST.
func (s *Server) internalTimeout() time.Duration {
	timeout := 2 * s.node.ReplicateInterval()
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	return timeout
}

// postInternal POSTs one cluster-internal payload and decodes the 200-OK
// response into out. A 409 is parsed as a stale_epoch rejection: the
// receiver's lease is adopted locally and errStaleEpoch returned.
func (s *Server) postInternal(ctx context.Context, peer, path, kind, design string, payload []byte, out any) error {
	ctx, cancel := context.WithTimeout(ctx, s.internalTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.InternalHeader, kind)
	req.Header.Set(cluster.PeerHeader, s.node.Self())
	if tc, ok := obs.TraceFromContext(ctx); ok && tc.Propagatable() {
		req.Header.Set(headerTraceparent, tc.Traceparent())
	}
	resp, err := s.node.Client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict && design != "" {
		var stale staleEpochBody
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&stale); err == nil &&
			stale.Error.Code == codeStaleEpoch {
			if stale.Epoch > 0 {
				s.leases.Adopt(design, stale.Owner, stale.Epoch)
				s.node.SetLeaseEpoch(design, stale.Epoch)
			}
			return fmt.Errorf("%s %s: %w", kind, peer, errStaleEpoch)
		}
		return fmt.Errorf("%s to %s: status 409", kind, peer)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("%s to %s: status %d: %s", kind, peer, resp.StatusCode, body)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postReplicate ships one replicate payload to peer and decodes the ack.
func (s *Server) postReplicate(ctx context.Context, peer, design string, payload []byte) (*replicateResponse, error) {
	var ack replicateResponse
	if err := s.postInternal(ctx, peer, "/v1/internal/replicate", "replicate", design, payload, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// postEdits streams one edit to peer and decodes the ack.
func (s *Server) postEdits(ctx context.Context, peer, design string, payload []byte) (*editsResponse, error) {
	var ack editsResponse
	if err := s.postInternal(ctx, peer, "/v1/internal/edits", "edits", design, payload, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// aliveOthers is every alive member except this node.
func (s *Server) aliveOthers() []string {
	self := s.node.Self()
	var out []string
	for _, m := range s.node.Members() {
		if m == self || !s.node.AliveMember(m) {
			continue
		}
		out = append(out, m)
	}
	return out
}

// broadcastDelete tombstones a deleted design on every alive member (not
// just its current placement — promotions may have scattered copies).
func (s *Server) broadcastDelete(name string, epoch uint64) {
	s.sendTombstones(name, epoch, s.aliveOthers())
}

// sendTombstones ships a delete tombstone for name at epoch to peers.
func (s *Server) sendTombstones(name string, epoch uint64, peers []string) {
	payload, err := json.Marshal(replicateRequest{
		Delete: true, Name: name, Epoch: epoch, From: s.node.Self(),
	})
	if err != nil {
		return
	}
	for _, peer := range peers {
		_, _ = s.postReplicate(context.Background(), peer, "", payload)
	}
}

// --- replication: replica side ---

// handleReplicate accepts a shipped snapshot (or tombstone) from a design's
// owner. Idempotent by (epoch, seq); shipments below the adopted lease
// epoch are rejected with 409 stale_epoch — that rejection is what fences a
// partitioned ex-owner. With a store attached the snapshot is persisted
// under replicas/ and the replica's WAL reset to it.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req replicateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad replicate request", err)
		return
	}
	if req.From == "" {
		req.From = r.Header.Get(cluster.PeerHeader)
	}
	if req.Delete {
		if req.Name == "" {
			httpError(w, http.StatusBadRequest, codeInvalidRequest, "delete needs a design name")
			return
		}
		if li, ok := s.leases.CheckEpoch(req.Name, req.Epoch); !ok {
			s.writeStaleEpoch(w, req.Name, li)
			return
		}
		s.dropReplica(req.Name)
		s.leases.Forget(req.Name)
		s.node.ClearLeaseEpoch(req.Name)
		writeJSON(w, http.StatusOK, replicateResponse{Design: req.Name, Applied: true})
		return
	}
	if req.Snapshot == nil || req.Snapshot.Name == "" {
		httpError(w, http.StatusBadRequest, codeInvalidRequest,
			"replicate needs a snapshot with a name")
		return
	}
	name := req.Snapshot.Name
	if li, ok := s.leases.CheckEpoch(name, req.Epoch); !ok {
		s.writeStaleEpoch(w, name, li)
		return
	}
	// A shipment can land on a node that still owns the design locally: a
	// strictly higher epoch means we lost ownership — fence, demote, and
	// accept the shipment as a replica. Anything else is a stale ex-owner
	// shipping at us.
	if d, loaded := s.design(name); loaded {
		cur := d.epoch.Load()
		if req.Epoch > cur {
			s.fenceOwned(d, true, req.Epoch)
		} else if !d.fenced.Load() {
			s.writeStaleEpoch(w, name, cluster.LeaseInfo{Owner: s.node.Self(), Epoch: cur})
			return
		}
	}
	if req.From != "" && s.leases.Adopt(name, req.From, req.Epoch) {
		s.node.SetLeaseEpoch(name, req.Epoch)
	}
	s.repMu.Lock()
	rep := s.reps[name]
	if rep == nil {
		rep = &replicaState{}
		s.reps[name] = rep
	}
	s.repMu.Unlock()
	// Serialize rebuilds per design; concurrent ships of other designs
	// proceed independently.
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.eng != nil && rep.epoch == req.Epoch && req.Seq <= rep.seq {
		s.node.NoteReplicateSkipped()
		writeJSON(w, http.StatusOK, replicateResponse{Design: name, Seq: rep.seq, Applied: false})
		return
	}
	if rep.eng != nil && rep.epoch > req.Epoch {
		s.writeStaleEpoch(w, name, cluster.LeaseInfo{Owner: rep.from, Epoch: rep.epoch})
		return
	}
	eng, err := rebuildEngine(s.lib, req.Snapshot)
	if err != nil {
		httpErrorDetail(w, http.StatusUnprocessableEntity, codeUnprocessable,
			"rebuilding replicated design", err)
		return
	}
	if s.store != nil {
		req.Snapshot.EditSeq, req.Snapshot.Epoch = req.Seq, req.Epoch
		if err := s.store.saveReplicaSnapshot(req.Snapshot); err != nil {
			httpErrorDetail(w, http.StatusInternalServerError, codeInternal,
				"persisting replica snapshot", err)
			return
		}
		if rep.log == nil {
			if rlog, _, err := s.store.openReplicaWAL(name, nil); err == nil {
				rep.log = rlog
			}
		}
		if rep.log != nil {
			// The snapshot covers everything: reset the tail, keep sequence
			// numbers aligned with the owner's edit stream.
			_ = rep.log.TruncateAll()
			rep.log.EnsureSeq(req.Seq)
		}
	}
	rep.eng, rep.seq, rep.epoch, rep.from, rep.ingested = eng, req.Seq, req.Epoch, req.From, 0
	s.node.NoteReplicateApplied()
	writeJSON(w, http.StatusOK, replicateResponse{Design: name, Seq: req.Seq, Applied: true})
}

// handleReplicateEdits applies one streamed edit to the local replica copy.
// The edit applies only at exactly (replica epoch, replica seq + 1); a
// duplicate acks as applied, a gap or epoch change acks applied=false and
// the owner repairs with a full snapshot ship. Durable replicas append the
// edit to their WAL (aligned with the owner's sequence numbers) before
// applying, and compact periodically.
func (s *Server) handleReplicateEdits(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req editsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad edits request", err)
		return
	}
	if req.Design == "" || req.Seq == 0 || len(req.Payload) == 0 {
		httpError(w, http.StatusBadRequest, codeInvalidRequest,
			"edits needs a design, a non-zero seq and a payload")
		return
	}
	name := req.Design
	if req.From == "" {
		req.From = r.Header.Get(cluster.PeerHeader)
	}
	if li, ok := s.leases.CheckEpoch(name, req.Epoch); !ok {
		s.writeStaleEpoch(w, name, li)
		return
	}
	if d, loaded := s.design(name); loaded {
		cur := d.epoch.Load()
		if req.Epoch > cur {
			s.fenceOwned(d, true, req.Epoch)
		} else if !d.fenced.Load() {
			s.writeStaleEpoch(w, name, cluster.LeaseInfo{Owner: s.node.Self(), Epoch: cur})
			return
		}
	}
	if req.From != "" && s.leases.Adopt(name, req.From, req.Epoch) {
		s.node.SetLeaseEpoch(name, req.Epoch)
	}
	rep := s.replica(name)
	if rep == nil {
		// Never shipped here: ask for a snapshot.
		writeJSON(w, http.StatusOK, editsResponse{Design: name, Applied: false})
		return
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	switch {
	case rep.eng == nil:
		writeJSON(w, http.StatusOK, editsResponse{Design: name, Applied: false})
		return
	case rep.epoch > req.Epoch:
		s.writeStaleEpoch(w, name, cluster.LeaseInfo{Owner: rep.from, Epoch: rep.epoch})
		return
	case rep.epoch < req.Epoch:
		// Our base predates the sender's epoch: need a fresh snapshot.
		writeJSON(w, http.StatusOK, editsResponse{Design: name, Seq: rep.seq, Applied: false})
		return
	case req.Seq <= rep.seq:
		// Duplicate delivery (owner retry): already folded in.
		writeJSON(w, http.StatusOK, editsResponse{Design: name, Seq: rep.seq, Applied: true})
		return
	case req.Seq != rep.seq+1:
		// Gap: the owner falls back to a snapshot ship.
		writeJSON(w, http.StatusOK, editsResponse{Design: name, Seq: rep.seq, Applied: false})
		return
	}
	var ed incsta.Edit
	if err := json.Unmarshal(req.Payload, &ed); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad edit payload", err)
		return
	}
	if rep.log != nil {
		// WAL-first, aligned with the owner's sequence numbering so the
		// replayed tail means the same thing on both sides.
		rep.log.EnsureSeq(req.Seq - 1)
		if _, err := rep.log.Append(req.Payload); err != nil {
			httpErrorDetail(w, http.StatusInternalServerError, codeInternal, "replica wal append", err)
			return
		}
	}
	if _, err := rep.eng.ApplyEdit(ed); err != nil {
		// The owner only ships edits it applied successfully; a divergent
		// rejection here means the copies disagree — ask for a snapshot.
		writeJSON(w, http.StatusOK, editsResponse{Design: name, Seq: rep.seq, Applied: false})
		return
	}
	rep.seq = req.Seq
	rep.from = req.From
	rep.ingested++
	if s.store != nil && rep.ingested >= replicaCompactEvery {
		snap := snapshotOf(name, rep.eng, 0)
		snap.EditSeq, snap.Epoch = rep.seq, rep.epoch
		if err := s.store.saveReplicaSnapshot(snap); err == nil {
			if rep.log != nil {
				_ = rep.log.TruncateAll()
				rep.log.EnsureSeq(rep.seq)
			}
			rep.ingested = 0
		}
	}
	s.node.NoteReplicateApplied()
	writeJSON(w, http.StatusOK, editsResponse{Design: name, Seq: rep.seq, Applied: true})
}

// dropReplica removes a replica copy, its WAL handle and its durable state.
func (s *Server) dropReplica(name string) {
	s.repMu.Lock()
	rep := s.reps[name]
	delete(s.reps, name)
	s.repMu.Unlock()
	if rep != nil {
		rep.mu.Lock()
		if rep.log != nil {
			rep.log.Close()
			rep.log = nil
		}
		rep.eng = nil
		rep.mu.Unlock()
	}
	if s.store != nil {
		_ = s.store.removeReplica(name)
	}
}

// --- fencing ---

// fenceOwned marks an owned design fenced: an ownership epoch of at least
// `below` exists somewhere, so this node must stop acting as its owner —
// unless the design has meanwhile been re-promoted to `below` or higher, in
// which case the fencing evidence is stale and is ignored. With demote, the
// design is (asynchronously, once) closed, unpublished and its durable
// owner-side state removed — the node keeps serving it only through
// whatever replica copy it is shipped next. Without demote the design stays
// resident so the promotion loop can re-claim it at a higher epoch (the
// path a fenced owner takes when the claimant that fenced it died before
// finishing its takeover). Serialized against promoteOwned on d.fateMu:
// a stale fence racing a re-promotion could otherwise tear down the copy a
// just-announced lease points at, losing the design cluster-wide.
func (s *Server) fenceOwned(d *design, demote bool, below uint64) {
	d.fateMu.Lock()
	defer d.fateMu.Unlock()
	if below > 0 && d.epoch.Load() >= below {
		return
	}
	if !d.fenced.Swap(true) {
		s.log().Info("design fenced", "design", d.name, "epoch", d.epoch.Load(), "below", below, "demote", demote)
	}
	if demote && d.demoting.CompareAndSwap(false, true) {
		go s.demoteDesign(d)
	}
}

// fenceFromStale reacts to a stale_epoch rejection of this node's own
// replication traffic. The design is fenced either way, but it is demoted
// (closed, unpublished, durable owner state dropped) only when the lease —
// just adopted from the rejection body by postInternal — names a different
// live owner at an epoch above ours: real evidence a winner took over.
// A promise-level rejection (a replica that promised an epoch to a claim
// that may never win its quorum) fences without demoting, so the
// fenced-owner re-claim path can recover the design at a higher epoch if
// no winner ever emerges — demoting there would strand the design behind
// a lease that still names this node.
func (s *Server) fenceFromStale(d *design, below uint64) {
	li, _ := s.leases.Current(d.name)
	demote := li.Owner != "" && li.Owner != s.node.Self() &&
		s.node.AliveMember(li.Owner) && li.Epoch >= below
	s.fenceOwned(d, demote, below)
}

// demoteDesign unpublishes and closes a fenced ex-owner's design.
func (s *Server) demoteDesign(d *design) {
	s.mu.Lock()
	if s.designs[d.name] == d {
		delete(s.designs, d.name)
	}
	s.mu.Unlock()
	d.close()
	if s.store != nil {
		_ = s.store.removeDesign(d.name)
	}
	s.log().Info("design demoted", "design", d.name, "epoch", d.epoch.Load())
}

// --- lease claims and promotion ---

// localBasis is how caught-up this node's best copy of name is, as a
// lexicographic (epoch, seq) pair over both the owned design (fenced or
// not) and the replica copy.
func (s *Server) localBasis(name string) (epoch, seq uint64) {
	if d, ok := s.design(name); ok {
		epoch, seq = d.epoch.Load(), d.seq.Load()
	}
	if rep := s.replica(name); rep != nil {
		if eng, rseq, repoch := rep.view(); eng != nil {
			if repoch > epoch || (repoch == epoch && rseq > seq) {
				epoch, seq = repoch, rseq
			}
		}
	}
	return epoch, seq
}

// basisAtLeast reports (ae, as) >= (be, bs) lexicographically.
func basisAtLeast(ae, as, be, bs uint64) bool {
	return ae > be || (ae == be && as >= bs)
}

// handleLeaseClaim answers a candidate's ownership claim. The promise is
// granted iff the candidate's copy is at least as caught-up as ours AND the
// lease table accepts the epoch (strictly above everything adopted or
// promised — each epoch is promised at most once, which is the whole safety
// argument). Granting a claim for a design we own fences it without
// demoting: if the claimant dies before taking over, our promotion loop
// re-claims at a higher epoch and un-fences.
func (s *Server) handleLeaseClaim(w http.ResponseWriter, r *http.Request) {
	var req leaseClaimRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad lease claim", err)
		return
	}
	if req.Design == "" || req.Epoch == 0 || req.From == "" {
		httpError(w, http.StatusBadRequest, codeInvalidRequest,
			"lease claim needs a design, a non-zero epoch and a sender")
		return
	}
	basisE, basisS := s.localBasis(req.Design)
	granted := false
	if basisAtLeast(req.BasisEpoch, req.BasisSeq, basisE, basisS) &&
		s.leases.Promise(req.Design, req.Epoch) {
		granted = true
		if d, ok := s.design(req.Design); ok && req.From != s.node.Self() {
			s.fenceOwned(d, false, req.Epoch)
		}
	}
	li, _ := s.leases.Current(req.Design)
	writeJSON(w, http.StatusOK, leaseClaimResponse{
		Design: req.Design, Granted: granted,
		BasisEpoch: basisE, BasisSeq: basisS, Lease: li,
	})
}

// postClaim sends one lease claim to peer.
func (s *Server) postClaim(ctx context.Context, peer string, payload []byte) (*leaseClaimResponse, error) {
	var resp leaseClaimResponse
	if err := s.postInternal(ctx, peer, "/v1/internal/lease/claim", "lease-claim", "", payload, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// handleLeaseAdopt folds an election winner's announcement into the local
// lease table, fencing (and demoting) a resident copy the announcement
// supersedes. An announcement below our own adopted epoch is answered 409
// stale_epoch so a zombie winner stands down.
func (s *Server) handleLeaseAdopt(w http.ResponseWriter, r *http.Request) {
	var req leaseAdoptRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad lease announcement", err)
		return
	}
	if req.Design == "" || req.Owner == "" || req.Epoch == 0 {
		httpError(w, http.StatusBadRequest, codeInvalidRequest,
			"lease announcement needs a design, an owner and a non-zero epoch")
		return
	}
	if li, ok := s.leases.CheckEpoch(req.Design, req.Epoch); !ok {
		s.writeStaleEpoch(w, req.Design, li)
		return
	}
	if d, loaded := s.design(req.Design); loaded && req.Owner != s.node.Self() && req.Epoch > d.epoch.Load() {
		s.fenceOwned(d, true, req.Epoch)
	}
	if s.leases.Adopt(req.Design, req.Owner, req.Epoch) {
		s.node.SetLeaseEpoch(req.Design, req.Epoch)
	}
	li, _ := s.leases.Current(req.Design)
	writeJSON(w, http.StatusOK, map[string]any{"design": req.Design, "lease": li})
}

// announceLease broadcasts a freshly adopted lease to every alive member.
// Best-effort: a member that misses the announcement learns the lease from
// replication traffic or the next election instead.
func (s *Server) announceLease(name string, epoch uint64) {
	payload, err := json.Marshal(leaseAdoptRequest{
		Design: name, Owner: s.node.Self(), Epoch: epoch, From: s.node.Self(),
	})
	if err != nil {
		return
	}
	for _, peer := range s.aliveOthers() {
		_ = s.postInternal(context.Background(), peer, "/v1/internal/lease/adopt", "lease-adopt", name, payload, nil)
	}
}

// claimLease runs one ownership election for name at epoch: promise
// locally, then collect promises from every alive member. The claim wins
// iff every alive member answered (a transport failure means an unknown
// promise state — abort rather than risk a split) and promises reached a
// majority of the FULL membership. A refusal reporting a strictly more
// caught-up copy aborts immediately — that node should win instead.
func (s *Server) claimLease(name string, epoch, basisE, basisS uint64) bool {
	if !s.leases.Promise(name, epoch) {
		return false
	}
	grants := 1 // self
	payload, err := json.Marshal(leaseClaimRequest{
		Design: name, Epoch: epoch, From: s.node.Self(),
		BasisEpoch: basisE, BasisSeq: basisS,
	})
	if err != nil {
		return false
	}
	for _, peer := range s.aliveOthers() {
		resp, err := s.postClaim(context.Background(), peer, payload)
		if err != nil {
			return false
		}
		if resp.Granted {
			grants++
			continue
		}
		// Refused: learn why. Adopt their lease view and ratchet our promise
		// watermark up to theirs so the next claim leapfrogs every epoch the
		// refuser has already promised — proposing promised+1 each round
		// against a peer that is also self-promising each round never
		// converges. Stand down entirely when the refuser's copy is strictly
		// more caught-up: that node should win, and our own rising watermark
		// must not starve its election.
		if resp.Lease.Epoch > 0 {
			s.leases.Adopt(name, resp.Lease.Owner, resp.Lease.Epoch)
		}
		if resp.Lease.Promised > epoch {
			s.leases.Promise(name, resp.Lease.Promised)
		}
		if !basisAtLeast(basisE, basisS, resp.BasisEpoch, resp.BasisSeq) {
			s.standMu.Lock()
			s.standDown[name] = time.Now().Add(4 * s.promoteEvery)
			s.standMu.Unlock()
			return false
		}
	}
	return grants >= s.node.Quorum()
}

// claimFreshLease runs one ownership election for a design this node is
// about to create (PUT load, basis zero). Unlike a promotion claim it must
// win cleanly — every alive member answers with a grant and grants reach a
// membership majority — because winning over a dissenter whose fencing
// epoch exceeds the claimed one would create a design that is fenced by its
// own replica set on the first ship.
//
// The second return value lists provably stale replicas: peers that refused
// because they hold a copy of the name (non-zero basis) even though the
// lease owner they report granted this very claim — which proves that owner
// hosts neither the design nor a conflicting lease, i.e. the refuser's copy
// is debris of a previously deleted design whose tombstone it missed. The
// caller may tombstone those peers and retry. A refuser whose reported
// owner is dead, unknown, or itself refusing is NOT debris — it may hold
// acked edits awaiting promotion, and a fresh load must never destroy
// those.
func (s *Server) claimFreshLease(name string, epoch uint64) (bool, []string) {
	if !s.leases.Promise(name, epoch) {
		return false, nil
	}
	grants := map[string]bool{s.node.Self(): true}
	payload, err := json.Marshal(leaseClaimRequest{
		Design: name, Epoch: epoch, From: s.node.Self(),
	})
	if err != nil {
		return false, nil
	}
	type refusal struct{ peer, owner string }
	var basisRefusals []refusal
	refused := false
	for _, peer := range s.aliveOthers() {
		resp, err := s.postClaim(context.Background(), peer, payload)
		if err != nil {
			// Unknown promise state somewhere: neither win nor tombstone.
			return false, nil
		}
		if resp.Granted {
			grants[peer] = true
			continue
		}
		refused = true
		// Learn why, exactly as promotion claims do: adopt the refuser's
		// lease view and ratchet our promise watermark so the next attempt
		// leapfrogs every epoch the refuser has already seen.
		if resp.Lease.Epoch > 0 {
			s.leases.Adopt(name, resp.Lease.Owner, resp.Lease.Epoch)
		}
		if resp.Lease.Promised > epoch {
			s.leases.Promise(name, resp.Lease.Promised)
		}
		if resp.BasisEpoch > 0 || resp.BasisSeq > 0 {
			basisRefusals = append(basisRefusals, refusal{peer, resp.Lease.Owner})
		}
	}
	if !refused && len(grants) >= s.node.Quorum() {
		return true, nil
	}
	var debris []string
	for _, ref := range basisRefusals {
		if ref.owner == s.node.Self() || (ref.owner != "" && grants[ref.owner]) {
			debris = append(debris, ref.peer)
		}
	}
	return false, debris
}

// promotionLoop periodically scans for designs whose ownership is lost —
// the lease owner is dead, unknown, or this node itself after a restart —
// and elects this node where its copy qualifies. The scan interval is
// randomized over [T/2, 3T/2) per iteration (Raft-style election jitter):
// two caught-up replicas that boot in the same instant would otherwise
// claim in lockstep — each promising its own epoch and denying the
// other's — and livelock with ever-rising epochs.
func (s *Server) promotionLoop() {
	defer close(s.promoDone)
	t := time.NewTimer(s.promoteJitter())
	defer t.Stop()
	for {
		select {
		case <-s.promoStop:
			return
		case <-t.C:
			s.promoteTick()
			t.Reset(s.promoteJitter())
		}
	}
}

// promoteJitter draws one randomized promotion-scan delay.
func (s *Server) promoteJitter() time.Duration {
	return s.promoteEvery/2 + time.Duration(rand.Int64N(int64(s.promoteEvery)))
}

// standingDown reports whether elections for name are paused because a
// recent claim was refused by a strictly more caught-up candidate.
func (s *Server) standingDown(name string) bool {
	s.standMu.Lock()
	defer s.standMu.Unlock()
	until, ok := s.standDown[name]
	if !ok {
		return false
	}
	if time.Now().After(until) {
		delete(s.standDown, name)
		return false
	}
	return true
}

// promoteTick runs one promotion scan. Claims only happen from inside a
// majority partition: a minority fragment can neither win an election nor
// accept writes, which is what makes the fencing sound.
func (s *Server) promoteTick() {
	if !s.ready.Load() || !s.node.HasMajority() {
		return
	}
	self := s.node.Self()

	// Fenced-but-not-demoted owners (a granted claim that never completed,
	// or a restart into a multi-node cluster): re-claim at a higher epoch.
	s.mu.Lock()
	fenced := make([]*design, 0)
	for _, d := range s.designs {
		if d.fenced.Load() && !d.demoting.Load() {
			fenced = append(fenced, d)
		}
	}
	s.mu.Unlock()
	for _, d := range fenced {
		if li, ok := s.leases.Current(d.name); ok && li.Owner != "" && li.Owner != self &&
			s.node.AliveMember(li.Owner) {
			continue // a live owner exists; stay fenced until demoted or re-shipped
		}
		if s.standingDown(d.name) {
			continue
		}
		epoch := s.leases.NextEpoch(d.name)
		if s.claimLease(d.name, epoch, d.epoch.Load(), d.seq.Load()) {
			s.promoteOwned(d, epoch)
		}
	}

	// Replica copies of designs with no live owner: elect ourselves.
	s.repMu.Lock()
	names := make([]string, 0, len(s.reps))
	for n := range s.reps {
		names = append(names, n)
	}
	s.repMu.Unlock()
	for _, name := range names {
		if _, loaded := s.design(name); loaded {
			continue
		}
		rep := s.replica(name)
		if rep == nil {
			continue
		}
		eng, seq, repoch := rep.view()
		if eng == nil {
			continue
		}
		li, haveLease := s.leases.Current(name)
		_, isRingOwner, _ := s.node.Role(name)
		claim := false
		switch {
		case !haveLease || li.Owner == "":
			claim = true // ownership unknown
		case li.Owner == self:
			claim = true // lease says us but the design is gone: recover it
		case !s.node.AliveMember(li.Owner):
			claim = true // owner died
		case isRingOwner:
			claim = true // handback: the ring placed the design here
		}
		if !claim || s.standingDown(name) {
			continue
		}
		epoch := s.leases.NextEpoch(name)
		if s.claimLease(name, epoch, repoch, seq) {
			s.promoteReplica(name, rep, epoch)
		}
	}
}

// promoteOwned un-fences a resident design under a freshly won epoch. If a
// concurrent fence started demoting the copy while the claim was in flight,
// the promotion aborts instead of resurrecting a design mid-teardown — the
// won epoch is simply abandoned (promised but never adopted anywhere).
func (s *Server) promoteOwned(d *design, epoch uint64) {
	d.fateMu.Lock()
	if d.demoting.Load() {
		d.fateMu.Unlock()
		s.log().Info("reclaim abandoned: design is demoting", "design", d.name, "epoch", epoch)
		return
	}
	d.epoch.Store(epoch)
	d.fenced.Store(false)
	d.fateMu.Unlock()
	self := s.node.Self()
	s.leases.Adopt(d.name, self, epoch)
	s.node.SetLeaseEpoch(d.name, epoch)
	s.node.NotePromotion()
	s.log().Info("design ownership reclaimed", "design", d.name, "epoch", epoch)
	go func() {
		_ = d.checkpoint() // persist the new epoch
		s.announceLease(d.name, epoch)
		s.shipDesign(d) // and re-ship so the replica set re-bases on it
	}()
}

// promoteReplica turns this node's replica copy of name into the owned
// design under a freshly won epoch: persist an owner-side snapshot at the
// replicated sequence, transfer the engine into a new single-writer design,
// publish it, and ship the new epoch to the replica set. Bit-identical to a
// single-node replay of the acked edit stream — the engine IS that replay.
func (s *Server) promoteReplica(name string, rep *replicaState, epoch uint64) {
	rep.mu.Lock()
	eng, seq := rep.eng, rep.seq
	if eng == nil {
		rep.mu.Unlock()
		return
	}
	var dlog *wal.Log
	if s.store != nil {
		snap := snapshotOf(name, eng, 0)
		snap.EditSeq, snap.Epoch = seq, epoch
		if err := s.store.saveSnapshot(snap); err != nil {
			rep.mu.Unlock()
			s.log().Error("promotion aborted: cannot persist owner snapshot", "design", name, "err", err)
			return
		}
		var err error
		if dlog, _, err = s.store.openWAL(name, nil); err != nil {
			rep.mu.Unlock()
			s.log().Error("promotion aborted: cannot open owner wal", "design", name, "err", err)
			return
		}
		// Any WAL debris from a previous ownership of this name predates the
		// snapshot we just wrote; replaying it would corrupt the state.
		_ = dlog.TruncateAll()
	}
	if rep.log != nil {
		rep.log.Close()
		rep.log = nil
	}
	rep.eng = nil
	rep.mu.Unlock()
	s.repMu.Lock()
	delete(s.reps, name)
	s.repMu.Unlock()
	if s.store != nil {
		_ = s.store.removeReplica(name)
	}

	d := newDesign(name, eng, dlog, s.store, s.queueDepth)
	d.seq.Store(seq)
	d.epoch.Store(epoch)
	s.attachCluster(d)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		d.close()
		return
	}
	s.designs[name] = d
	s.mu.Unlock()
	self := s.node.Self()
	s.leases.Adopt(name, self, epoch)
	s.node.SetLeaseEpoch(name, epoch)
	s.node.NotePromotion()
	s.log().Info("replica promoted to owner", "design", name, "epoch", epoch, "seq", seq)
	s.startShipping(d)
	go func() {
		s.announceLease(name, epoch)
		s.shipDesign(d) // ship the new epoch to the replica set immediately
	}()
}

// recoverReplicas rebuilds the replica copies persisted under replicas/:
// snapshot plus replicated edit tail. A replica that fails to rebuild is
// discarded (it re-converges from the owner's next ship) rather than
// failing recovery of the whole node.
func (s *Server) recoverReplicas(ctx context.Context) {
	if s.store == nil || s.node == nil {
		return
	}
	_, span := obs.StartSpan(ctx, "server.recover.replicas")
	defer span.End()
	escaped, err := s.store.listReplicas()
	if err != nil {
		s.log().Error("listing persisted replicas", "err", err)
		return
	}
	recovered := 0
	for _, esc := range escaped {
		name := esc
		if n, derr := url.PathUnescape(esc); derr == nil {
			name = n
		}
		snap, err := s.store.loadReplicaSnapshot(esc)
		if err != nil {
			s.log().Warn("discarding unreadable replica", "design", name, "err", err)
			_ = s.store.removeReplica(name)
			continue
		}
		eng, err := rebuildEngine(s.lib, snap)
		if err != nil {
			s.log().Warn("discarding unrebuildable replica", "design", name, "err", err)
			_ = s.store.removeReplica(name)
			continue
		}
		seq := snap.EditSeq
		replayErr := error(nil)
		rlog, _, err := s.store.openReplicaWAL(snap.Name, func(rseq uint64, payload []byte) error {
			if rseq <= snap.EditSeq || replayErr != nil {
				return nil
			}
			if rseq != seq+1 {
				replayErr = fmt.Errorf("replica wal gap at %d (have %d)", rseq, seq)
				return replayErr
			}
			var ed incsta.Edit
			if err := json.Unmarshal(payload, &ed); err != nil {
				replayErr = err
				return replayErr
			}
			if _, err := eng.ApplyEdit(ed); err != nil {
				// The owner only shipped successfully applied edits; a
				// rejection here means the copy diverged.
				replayErr = err
				return replayErr
			}
			seq = rseq
			return nil
		})
		if err != nil || replayErr != nil {
			if err == nil {
				rlog.Close()
				err = replayErr
			}
			s.log().Warn("discarding replica with broken edit tail", "design", name, "err", err)
			_ = s.store.removeReplica(name)
			continue
		}
		rlog.EnsureSeq(seq)
		rep := &replicaState{eng: eng, seq: seq, epoch: snap.Epoch, log: rlog}
		s.repMu.Lock()
		s.reps[snap.Name] = rep
		s.repMu.Unlock()
		// Record the epoch the copy was shipped under without asserting an
		// owner — the promotion loop claims a higher epoch if nobody does.
		s.leases.Adopt(snap.Name, "", snap.Epoch)
		recovered++
	}
	span.SetAttr("replicas", recovered)
}

// --- membership ---

// handleInternalHealth is the heartbeat target: 200 as soon as the process
// serves HTTP, ready or not (liveness, not readiness — a recovering node is
// alive and must not be ejected from membership).
func (s *Server) handleInternalHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMembersGet lists the membership with health, quorum and majority.
func (s *Server) handleMembersGet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"self":         s.node.Self(),
		"proxy":        s.node.Proxy(),
		"quorum":       s.node.Quorum(),
		"has_majority": s.node.HasMajority(),
		"members":      s.node.Peers(),
	})
}

// handleMembersAdd joins a peer to the membership and broadcasts the new
// list to every alive member.
func (s *Server) handleMembersAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Peer string `json:"peer"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad join request", err)
		return
	}
	norm, err := s.node.AddMember(req.Peer)
	if err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "peer rejected", err)
		return
	}
	go s.broadcastMembers()
	writeJSON(w, http.StatusOK, map[string]any{"joined": norm, "members": s.node.Members()})
}

// handleMembersRemove removes a peer from the membership and broadcasts.
// The {peer...} wildcard accepts unescaped base URLs (http://host:port).
func (s *Server) handleMembersRemove(w http.ResponseWriter, r *http.Request) {
	peer := r.PathValue("peer")
	if unesc, err := url.PathUnescape(peer); err == nil {
		peer = unesc
	}
	norm, err := s.node.RemoveMember(peer)
	if err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "cannot remove peer", err)
		return
	}
	go s.broadcastMembers()
	writeJSON(w, http.StatusOK, map[string]any{"removed": norm, "members": s.node.Members()})
}

// handleInternalMembers applies a peer's membership broadcast wholesale:
// join everything listed, drop everything absent (never self). Broadcasts
// are not re-broadcast — the admin entry point fans out exactly once.
func (s *Server) handleInternalMembers(w http.ResponseWriter, r *http.Request) {
	var req membersRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpErrorDetail(w, http.StatusBadRequest, codeInvalidRequest, "bad members broadcast", err)
		return
	}
	if len(req.Members) == 0 {
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "members list must not be empty")
		return
	}
	listed := map[string]bool{}
	for _, m := range req.Members {
		if norm, err := s.node.AddMember(m); err == nil {
			listed[norm] = true
		}
	}
	for _, m := range s.node.Members() {
		if !listed[m] && m != s.node.Self() {
			_, _ = s.node.RemoveMember(m)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"members": s.node.Members()})
}

// broadcastMembers pushes this node's membership list to every alive member.
func (s *Server) broadcastMembers() {
	payload, err := json.Marshal(membersRequest{Members: s.node.Members(), From: s.node.Self()})
	if err != nil {
		return
	}
	for _, peer := range s.aliveOthers() {
		_ = s.postInternal(context.Background(), peer, "/v1/internal/members", "members", "", payload, nil)
	}
}

// --- introspection ---

// clusterDesign is one design row of the GET /v1/cluster payload.
type clusterDesign struct {
	Name   string `json:"name"`
	Role   string `json:"role"` // "owner" or "replica"
	Seq    uint64 `json:"seq,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	Fenced bool   `json:"fenced,omitempty"`
	Owner  string `json:"owner,omitempty"` // replicas: who ships to us
}

// handleClusterStatus reports this node's membership view: peer health,
// breaker states, and the designs it owns or replicates. Deprecated in
// favour of GET /v1/cluster/members and GET /v1/cluster/designs/{name}.
func (s *Server) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	owned := make([]*design, 0, len(s.designs))
	for _, d := range s.designs {
		owned = append(owned, d)
	}
	s.mu.Unlock()
	designs := make([]clusterDesign, 0, len(owned))
	for _, d := range owned {
		designs = append(designs, clusterDesign{
			Name: d.name, Role: "owner",
			Seq: d.seq.Load(), Epoch: d.epoch.Load(), Fenced: d.fenced.Load(),
		})
	}
	s.repMu.Lock()
	for n, rep := range s.reps {
		rep.mu.Lock()
		designs = append(designs, clusterDesign{
			Name: n, Role: "replica", Seq: rep.seq, Epoch: rep.epoch, Owner: rep.from,
		})
		rep.mu.Unlock()
	}
	s.repMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"self":    s.node.Self(),
		"proxy":   s.node.Proxy(),
		"peers":   s.node.Peers(),
		"designs": designs,
	})
}

// handleClusterRoute answers "which node owns ?design=<name>" by ring
// placement. Deprecated in favour of GET /v1/cluster/designs/{name}, which
// also reports the lease.
func (s *Server) handleClusterRoute(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("design")
	if name == "" {
		httpError(w, http.StatusBadRequest, codeInvalidRequest, "need ?design=<name>")
		return
	}
	owner, replicas := s.node.Placement(name)
	writeJSON(w, http.StatusOK, map[string]any{
		"design": name, "owner": owner, "replicas": replicas,
	})
}

// handleClusterDesign is the resource-shaped design status: the adopted
// lease (owner + epoch), the ring placement, this node's local role, and —
// on the owner — per-replica acknowledged sequences.
func (s *Server) handleClusterDesign(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if unesc, err := url.PathUnescape(name); err == nil {
		name = unesc
	}
	li, _ := s.leases.Current(name)
	ringOwner, ringReplicas := s.node.Placement(name)
	resp := map[string]any{
		"design": name,
		"lease":  li,
		"ring":   map[string]any{"owner": ringOwner, "replicas": ringReplicas},
	}
	if d, ok := s.design(name); ok {
		seq := d.seq.Load()
		local := map[string]any{
			"role": "owner", "seq": seq, "epoch": d.epoch.Load(), "fenced": d.fenced.Load(),
		}
		if d.shp != nil {
			lag := map[string]uint64{}
			for peer, acked := range d.shp.snapshot() {
				lag[peer] = seq - min64(acked, seq)
			}
			local["replica_lag"] = lag
		}
		resp["local"] = local
	} else if rep := s.replica(name); rep != nil {
		if eng, seq, epoch := rep.view(); eng != nil {
			rep.mu.Lock()
			from := rep.from
			rep.mu.Unlock()
			resp["local"] = map[string]any{
				"role": "replica", "seq": seq, "epoch": epoch, "owner": from,
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
