package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/libsynth"
	"repro/internal/wal"
)

// bootDurableNode starts one store-backed cluster node on a pre-bound
// listener: real OS filesystem under dir, fsync on every append, promotion
// scans at test cadence. preServe runs after recovery but before the node
// serves HTTP — the only window where recovered state can be inspected
// before cluster traffic rewrites it.
func bootDurableNode(t *testing.T, self string, ln net.Listener, peers []string, dir string, preServe func(*Server)) *clusterNode {
	t.Helper()
	return bootDurableNodeReplicas(t, self, ln, peers, dir, 1, preServe)
}

// bootDurableNodeReplicas is bootDurableNode with an explicit ring replica
// count, for tests that need more than one caught-up candidate.
func bootDurableNodeReplicas(t *testing.T, self string, ln net.Listener, peers []string, dir string, replicas int, preServe func(*Server)) *clusterNode {
	t.Helper()
	cn, err := cluster.NewNode(cluster.Config{
		Self:              self,
		Peers:             peers,
		Replicas:          replicas,
		Proxy:             true,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		FailAfter:         2,
		BreakerCooldown:   250 * time.Millisecond,
		ReplicateInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cn.Start()
	st := NewStore(wal.OS(), dir, StoreConfig{Policy: wal.SyncAlways})
	s := New(libsynth.File(),
		WithCluster(cn), WithStore(st), WithPromotionInterval(50*time.Millisecond))
	if err := s.Recover(context.Background()); err != nil {
		t.Fatalf("recover %s: %v", self, err)
	}
	if preServe != nil {
		preServe(s)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	node := &clusterNode{s: s, ts: ts, node: cn, url: self}
	t.Cleanup(func() { killNode(node) })
	return node
}

// killNode tears one node down. Safe to call twice — every Close involved
// is idempotent — so tests can kill mid-flight and Cleanup can sweep.
func killNode(cn *clusterNode) {
	cn.ts.Close()
	cn.s.Close()
	cn.node.Close()
}

// rebind re-listens on the exact address a killed node served, so a revived
// node keeps its cluster identity (the ring hashes peer URLs).
func rebind(t *testing.T, selfURL string) net.Listener {
	t.Helper()
	addr := selfURL[len("http://"):]
	var ln net.Listener
	waitUntil(t, "address "+addr+" to rebind", func() bool {
		var err error
		ln, err = net.Listen("tcp", addr)
		return err == nil
	})
	return ln
}

// doInternal issues a cluster-internal POST with the identifying headers a
// real peer would carry.
func doInternal(t *testing.T, base, path, kind string, body any) (int, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.InternalHeader, kind)
	req.Header.Set(cluster.PeerHeader, "http://revived-peer.invalid")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestClusterOwnerKillPromotion is the fenced-handoff acceptance test: a
// 3-node durable cluster loses its owner, the restarted replica promotes
// itself from its own durable state under a strictly greater epoch, serves
// bit-identical slacks, accepts new edits — and the revived old owner comes
// back fenced, its stale epoch rejected with 409 stale_epoch.
func TestClusterOwnerKillPromotion(t *testing.T) {
	const name = "c17-promote"
	const n = 3
	root := t.TempDir()

	lns := make([]net.Listener, n)
	urls := make([]string, n)
	dirs := make([]string, n)
	for i := range lns {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = l
		urls[i] = "http://" + l.Addr().String()
		dirs[i] = filepath.Join(root, fmt.Sprintf("node%d", i))
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		nodes[i] = bootDurableNode(t, urls[i], lns[i], urls, dirs[i], nil)
	}
	waitUntil(t, "all members to see each other alive", func() bool {
		for _, a := range nodes {
			for _, u := range urls {
				if !a.node.AliveMember(u) {
					return false
				}
			}
		}
		return true
	})
	owner, replica, neither := byRole(t, nodes, name)
	dirOf := map[*clusterNode]string{}
	for i, cn := range nodes {
		dirOf[cn] = dirs[i]
	}

	// Load through the bystander (proxied to the ring owner) and apply a
	// recorded edit stream.
	var sum DesignSummary
	if code, raw := do(t, http.MethodPut, neither.url+"/v1/designs/"+name, LoadRequest{Bench: c17Bench}, &sum); code != http.StatusCreated {
		t.Fatalf("PUT = %d: %s", code, raw)
	}
	gates := clusterGates(t, neither.url, name)
	edits := []EditRequest{
		{Op: "resize", Gate: gates[0].Name, Strength: 8},
		{Op: "resize", Gate: gates[1].Name, Strength: 4},
		{Op: "resize", Gate: gates[2].Name, Strength: 8},
	}
	for _, ed := range edits {
		var er EditResponse
		if code, raw := do(t, http.MethodPost, neither.url+"/v1/designs/"+name+"/edits", ed, &er); code != http.StatusOK {
			t.Fatalf("edit = %d: %s", code, raw)
		}
	}
	waitUntil(t, "replica to ack the full edit stream", func() bool {
		d, ok := owner.s.design(name)
		if !ok {
			t.Fatal("owner lost the design")
		}
		rep := replica.s.replica(name)
		if rep == nil {
			return false
		}
		_, seq, _ := rep.view()
		return seq == d.seq.Load()
	})

	slacksPath := "/v1/designs/" + name + "/slacks?period_ps=2000&level=3"
	code, preSlacks := do(t, http.MethodGet, owner.url+slacksPath, nil, nil)
	if code != http.StatusOK {
		t.Fatalf("pre-kill slacks = %d", code)
	}

	// Kill the owner for good and bounce the replica, so the promotion that
	// follows can only come from the replica's durable on-disk state.
	killNode(owner)
	killNode(replica)
	replica2 := bootDurableNode(t, replica.url, rebind(t, replica.url), urls, dirOf[replica], nil)

	var promoted *design
	waitUntil(t, "restarted replica to promote itself", func() bool {
		d, ok := replica2.s.design(name)
		if !ok || d.fenced.Load() || d.epoch.Load() < 2 {
			return false
		}
		promoted = d
		return true
	})
	if got := promoted.seq.Load(); got != uint64(len(edits)) {
		t.Fatalf("promoted at seq %d, want the full acked stream %d", got, len(edits))
	}

	// The promoted copy serves byte-identical slacks...
	code, postSlacks := do(t, http.MethodGet, replica2.url+slacksPath, nil, nil)
	if code != http.StatusOK {
		t.Fatalf("post-promotion slacks = %d", code)
	}
	if postSlacks != preSlacks {
		t.Fatalf("promoted slacks diverge from the dead owner's:\npre:  %s\npost: %s", preSlacks, postSlacks)
	}
	// ...identical to a single-node replay of the same acked edit stream.
	single := New(libsynth.File())
	ts1 := httptest.NewServer(single.Handler())
	t.Cleanup(func() { ts1.Close(); single.Close() })
	if code, raw := do(t, http.MethodPut, ts1.URL+"/v1/designs/"+name, LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("single-node PUT = %d: %s", code, raw)
	}
	for _, ed := range edits {
		if code, raw := do(t, http.MethodPost, ts1.URL+"/v1/designs/"+name+"/edits", ed, nil); code != http.StatusOK {
			t.Fatalf("single-node edit = %d: %s", code, raw)
		}
	}
	if code, replaySlacks := do(t, http.MethodGet, ts1.URL+slacksPath, nil, nil); code != http.StatusOK {
		t.Fatalf("single-node slacks = %d", code)
	} else if replaySlacks != preSlacks {
		t.Fatalf("promoted slacks diverge from a single-node replay:\nreplay:   %s\npromoted: %s", replaySlacks, postSlacks)
	}

	// Writes resume, and the bystander routes them to the new owner (it
	// learns the lease from the winner's announcement, not from shipments).
	waitUntil(t, "bystander to route edits to the promoted owner", func() bool {
		var er EditResponse
		code, _ := do(t, http.MethodPost, neither.url+"/v1/designs/"+name+"/edits",
			EditRequest{Op: "resize", Gate: gates[3].Name, Strength: 4}, &er)
		return code == http.StatusOK && er.Version == uint64(len(edits))+2
	})

	// A revived old owner recovers its design fenced at the superseded
	// epoch: it must re-win an election before serving again.
	fencedAtBoot, epochAtBoot := false, uint64(0)
	owner2 := bootDurableNode(t, owner.url, rebind(t, owner.url), urls, dirOf[owner], func(s *Server) {
		if d, ok := s.design(name); ok {
			fencedAtBoot = d.fenced.Load()
			epochAtBoot = d.epoch.Load()
		}
	})
	if !fencedAtBoot || epochAtBoot != 1 {
		t.Fatalf("revived owner recovered fenced=%v epoch=%d, want fenced at epoch 1", fencedAtBoot, epochAtBoot)
	}

	// Old-epoch traffic against the new owner is fenced with the stable
	// stale_epoch code — the revived owner cannot overwrite newer state.
	staleCode, staleRaw := doInternal(t, replica2.url, "/v1/internal/edits", "edits", editsRequest{
		Design: name, Seq: promoted.seq.Load() + 1, Epoch: 1,
		From:    owner.url,
		Payload: json.RawMessage(`{"op":"resize","gate":"` + gates[0].Name + `","strength":4}`),
	})
	if staleCode != http.StatusConflict {
		t.Fatalf("old-epoch internal edit = %d, want 409: %s", staleCode, staleRaw)
	}
	var stale staleEpochBody
	if err := json.Unmarshal([]byte(staleRaw), &stale); err != nil {
		t.Fatal(err)
	}
	if stale.Error.Code != codeStaleEpoch || stale.Epoch < 2 {
		t.Fatalf("stale rejection = %+v, want code %q with the winning epoch", stale, codeStaleEpoch)
	}

	// The revived node rejoins: demoted to a replica or handed the design
	// back by the ring, it eventually serves current reads again.
	waitUntil(t, "revived owner to rejoin and serve current reads", func() bool {
		code, raw := do(t, http.MethodGet, owner2.url+slacksPath, nil, nil)
		curCode, cur := do(t, http.MethodGet, neither.url+slacksPath, nil, nil)
		return code == http.StatusOK && curCode == http.StatusOK && raw == cur
	})
}

// TestClusterMembershipAdminAPI exercises the resource-shaped membership
// API: list with quorum math, join with broadcast to every member, leave,
// and the self-removal guard.
func TestClusterMembershipAdminAPI(t *testing.T) {
	nodes := newTestCluster(t, 3, true)
	type membersResp struct {
		Self        string `json:"self"`
		Quorum      int    `json:"quorum"`
		HasMajority bool   `json:"has_majority"`
		Members     []struct {
			URL   string `json:"url"`
			Alive bool   `json:"alive"`
		} `json:"members"`
	}
	var mr membersResp
	if code, raw := do(t, http.MethodGet, nodes[0].url+"/v1/cluster/members", nil, &mr); code != http.StatusOK {
		t.Fatalf("GET members = %d: %s", code, raw)
	}
	if mr.Self != nodes[0].url || mr.Quorum != 2 || !mr.HasMajority || len(mr.Members) != 3 {
		t.Fatalf("members = %+v, want self %s, quorum 2, majority, 3 members", mr, nodes[0].url)
	}

	// Joining a (dead) fourth member raises the quorum everywhere.
	const joiner = "http://127.0.0.1:1"
	if code, raw := do(t, http.MethodPost, nodes[0].url+"/v1/cluster/members",
		map[string]string{"peer": joiner}, nil); code != http.StatusOK {
		t.Fatalf("POST members = %d: %s", code, raw)
	}
	waitUntil(t, "join broadcast to reach every member", func() bool {
		for _, cn := range nodes {
			if !cn.node.IsMember(joiner) {
				return false
			}
		}
		return true
	})
	if code, _ := do(t, http.MethodGet, nodes[1].url+"/v1/cluster/members", nil, &mr); code != http.StatusOK || mr.Quorum != 3 {
		t.Fatalf("after join: quorum = %d (status %d), want 3", mr.Quorum, code)
	}

	// Leave through a different node; the removal broadcasts too.
	if code, raw := do(t, http.MethodDelete,
		nodes[1].url+"/v1/cluster/members/"+url.PathEscape(joiner), nil, nil); code != http.StatusOK {
		t.Fatalf("DELETE member = %d: %s", code, raw)
	}
	waitUntil(t, "leave broadcast to reach every member", func() bool {
		for _, cn := range nodes {
			if cn.node.IsMember(joiner) {
				return false
			}
		}
		return true
	})

	// A node cannot remove itself.
	var eb errorBody
	if code, _ := do(t, http.MethodDelete,
		nodes[2].url+"/v1/cluster/members/"+url.PathEscape(nodes[2].url), nil, &eb); code != http.StatusBadRequest {
		t.Fatalf("DELETE self = %d, want 400", code)
	}
}

// TestClusterDeprecatedShims: the pre-lease cluster introspection routes
// still answer, but carry RFC 8594 Deprecation headers pointing at their
// resource-shaped successors.
func TestClusterDeprecatedShims(t *testing.T) {
	nodes := newTestCluster(t, 3, true)
	shims := map[string]string{
		"/v1/cluster":                   "/v1/cluster/members",
		"/v1/cluster/route?design=shim": "/v1/cluster/designs/{name}",
	}
	for path, successor := range shims {
		resp := noRedirect(t, http.MethodGet, nodes[0].url+path, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		if dep := resp.Header.Get("Deprecation"); dep != "true" {
			t.Fatalf("GET %s Deprecation = %q, want \"true\"", path, dep)
		}
		if link := resp.Header.Get("Link"); !bytes.Contains([]byte(link), []byte(successor)) {
			t.Fatalf("GET %s Link = %q, want successor %q", path, link, successor)
		}
	}

	// The successor resource reports lease and ring placement even for a
	// design that is not loaded anywhere.
	var ds struct {
		Design string `json:"design"`
		Ring   struct {
			Owner string `json:"owner"`
		} `json:"ring"`
	}
	if code, raw := do(t, http.MethodGet, nodes[0].url+"/v1/cluster/designs/shim", nil, &ds); code != http.StatusOK {
		t.Fatalf("GET cluster design = %d: %s", code, raw)
	}
	if ds.Design != "shim" || ds.Ring.Owner == "" {
		t.Fatalf("cluster design = %+v, want a ring owner for %q", ds, "shim")
	}
}

// TestClusterPromotionDuel kills the owner of a design replicated to BOTH
// surviving nodes. Two equally caught-up candidates then race the same
// election; without randomized promotion scans they claim in lockstep —
// each promising its own epoch and denying the other's — and livelock with
// ever-rising epochs. Exactly one must win, the loser must adopt the
// winner's lease, and writes must resume.
func TestClusterPromotionDuel(t *testing.T) {
	const name = "c17-duel"
	const n = 3
	root := t.TempDir()

	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		nodes[i] = bootDurableNodeReplicas(t, urls[i], lns[i], urls,
			filepath.Join(root, fmt.Sprintf("node%d", i)), 2, nil)
	}
	waitUntil(t, "all members to see each other alive", func() bool {
		for _, a := range nodes {
			for _, u := range urls {
				if !a.node.AliveMember(u) {
					return false
				}
			}
		}
		return true
	})

	var owner *clusterNode
	others := make([]*clusterNode, 0, 2)
	for _, cn := range nodes {
		if o, _, _ := cn.node.Role(name); o == cn.url {
			owner = cn
		} else {
			others = append(others, cn)
		}
	}
	if owner == nil || len(others) != 2 {
		t.Fatalf("no unique ring owner for %s", name)
	}

	if code, raw := do(t, http.MethodPut, owner.url+"/v1/designs/"+name, LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("PUT = %d: %s", code, raw)
	}
	gates := clusterGates(t, owner.url, name)
	var er EditResponse
	if code, raw := do(t, http.MethodPost, owner.url+"/v1/designs/"+name+"/edits",
		EditRequest{Op: "resize", Gate: gates[0].Name, Strength: 8}, &er); code != http.StatusOK {
		t.Fatalf("edit = %d: %s", code, raw)
	}
	waitUntil(t, "both replicas to ack the edit", func() bool {
		d, ok := owner.s.design(name)
		if !ok {
			t.Fatal("owner lost the design")
		}
		for _, cn := range others {
			rep := cn.s.replica(name)
			if rep == nil {
				return false
			}
			_, seq, _ := rep.view()
			if seq != d.seq.Load() {
				return false
			}
		}
		return true
	})

	killNode(owner)

	// The duel converges to exactly one unfenced owner with the loser adopting
	// the winner's lease. Both candidates briefly holding adjacent epochs is a
	// legal transient (the grantor's basis stays replica-shaped until its own
	// promotion completes, so a second claim at epoch+1 can win before the
	// announce→fence exchange settles it) — so the poll recomputes the
	// winner/loser split every round instead of latching the first promotion.
	var winner, loser *clusterNode
	waitUntil(t, "the duel to converge on one owner", func() bool {
		winner, loser = nil, nil
		for _, cn := range others {
			if d, ok := cn.s.design(name); ok && !d.fenced.Load() {
				if winner != nil {
					return false // transient dual promotion: keep polling
				}
				winner = cn
			} else {
				loser = cn
			}
		}
		if winner == nil {
			return false
		}
		li, ok := loser.s.leases.Current(name)
		return ok && li.Owner == winner.url
	})

	// Writes resume on the winner, routed from the loser.
	waitUntil(t, "writes to resume via the loser", func() bool {
		var er EditResponse
		code, _ := do(t, http.MethodPost, loser.url+"/v1/designs/"+name+"/edits",
			EditRequest{Op: "resize", Gate: gates[1].Name, Strength: 4}, &er)
		return code == http.StatusOK
	})
}

// TestClusterPromotionAsymmetricDuel pits a caught-up candidate against one
// that is a sequence behind but whose promise watermark is far ahead (the
// state a full-cluster restart leaves behind when both survivors hold durable
// replica copies of different ages). The lagging candidate refuses every
// claim below its watermark while self-promising higher each scan, so a
// claimant that only ever proposes its own promised+1 never converges: the
// election must still complete — won by the CAUGHT-UP candidate, above the
// lagger's watermark — because refusals teach the claimant the refuser's
// promised epoch and a basis-refused candidate stands down.
func TestClusterPromotionAsymmetricDuel(t *testing.T) {
	const name = "c17-asym"
	const n = 3
	root := t.TempDir()

	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		nodes[i] = bootDurableNodeReplicas(t, urls[i], lns[i], urls,
			filepath.Join(root, fmt.Sprintf("node%d", i)), 2, nil)
	}
	waitUntil(t, "all members to see each other alive", func() bool {
		for _, a := range nodes {
			for _, u := range urls {
				if !a.node.AliveMember(u) {
					return false
				}
			}
		}
		return true
	})

	var owner *clusterNode
	others := make([]*clusterNode, 0, 2)
	for _, cn := range nodes {
		if o, _, _ := cn.node.Role(name); o == cn.url {
			owner = cn
		} else {
			others = append(others, cn)
		}
	}
	if owner == nil || len(others) != 2 {
		t.Fatalf("no unique ring owner for %s", name)
	}

	if code, raw := do(t, http.MethodPut, owner.url+"/v1/designs/"+name, LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("PUT = %d: %s", code, raw)
	}
	gates := clusterGates(t, owner.url, name)
	var er EditResponse
	if code, raw := do(t, http.MethodPost, owner.url+"/v1/designs/"+name+"/edits",
		EditRequest{Op: "resize", Gate: gates[0].Name, Strength: 8}, &er); code != http.StatusOK {
		t.Fatalf("edit = %d: %s", code, raw)
	}
	waitUntil(t, "both replicas to ack the edit", func() bool {
		d, ok := owner.s.design(name)
		if !ok {
			t.Fatal("owner lost the design")
		}
		for _, cn := range others {
			rep := cn.s.replica(name)
			if rep == nil {
				return false
			}
			_, seq, _ := rep.view()
			if seq != d.seq.Load() {
				return false
			}
		}
		return true
	})

	killNode(owner)

	// After the kill (so the owner cannot re-ship and heal it), rewind one
	// candidate a sequence and ratchet its promise watermark far above
	// anything the caught-up candidate will propose on its own.
	caught, lagger := others[0], others[1]
	rep := lagger.s.replica(name)
	rep.mu.Lock()
	rep.seq--
	rep.mu.Unlock()
	lagger.s.leases.Promise(name, 100)

	waitUntil(t, "the caught-up candidate to win above the watermark", func() bool {
		d, ok := caught.s.design(name)
		return ok && !d.fenced.Load() && d.epoch.Load() > 100
	})
	if d, ok := lagger.s.design(name); ok && !d.fenced.Load() {
		t.Fatalf("the lagging candidate promoted %s despite a stale copy", name)
	}
	waitUntil(t, "lagger to adopt the winner's lease", func() bool {
		li, ok := lagger.s.leases.Current(name)
		return ok && li.Owner == caught.url && li.Epoch > 100
	})
	waitUntil(t, "writes to resume via the lagger", func() bool {
		var er EditResponse
		code, _ := do(t, http.MethodPost, lagger.url+"/v1/designs/"+name+"/edits",
			EditRequest{Op: "resize", Gate: gates[1].Name, Strength: 8}, &er)
		return code == http.StatusOK
	})
}
