package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/incsta"
	"repro/internal/netlist"
	"repro/internal/rctree"
	"repro/internal/sta"
	"repro/internal/timinglib"
	"repro/internal/wal"
)

// Store is the server's durability root: one directory per design holding an
// atomic snapshot of the full design state plus the write-ahead log of edits
// applied since that snapshot. A server without a Store (the default) is
// purely in-memory, exactly as before.
//
// Layout under root:
//
//	designs/<escaped-name>/snapshot.json    full design state + WAL high-water mark
//	designs/<escaped-name>/wal.log          edits with sequence numbers > WALSeq
//	replicas/<escaped-name>/snapshot.json   last shipped snapshot of a design this node replicates
//	replicas/<escaped-name>/wal.log         replicated edit tail past that snapshot
//	leases.json                             per-design ownership leases and promises
type Store struct {
	fs   wal.FS
	root string
	cfg  StoreConfig
}

// StoreConfig tunes the durability behaviour.
type StoreConfig struct {
	// Policy is the WAL fsync policy (default wal.SyncAlways: an acknowledged
	// edit is durable).
	Policy wal.SyncPolicy
	// FsyncInterval is the background fsync period under wal.SyncInterval.
	FsyncInterval time.Duration
	// SnapshotInterval is how often each design folds its WAL into a fresh
	// snapshot (0 = only at load and graceful shutdown).
	SnapshotInterval time.Duration
	// VerifyRecovery runs a full fresh analysis after replaying each design's
	// WAL and cross-checks it against the recovered incremental state —
	// expensive, but turns silent recovery corruption into a startup error.
	VerifyRecovery bool
}

// NewStore builds a store rooted at root on fsys (nil = the real
// filesystem). No IO happens until designs are loaded or recovered.
func NewStore(fsys wal.FS, root string, cfg StoreConfig) *Store {
	if fsys == nil {
		fsys = wal.OS()
	}
	return &Store{fs: fsys, root: root, cfg: cfg}
}

const readOnlyFlag = os.O_RDONLY

func isNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }

// designSnapshot is the persisted form of one design: everything incsta.New
// needs to rebuild the engine, plus the WAL sequence number the state
// already includes. Recovery replays only records with seq > WALSeq.
type designSnapshot struct {
	Name        string                  `json:"name"`
	WALSeq      uint64                  `json:"wal_seq"`
	Epoch       uint64                  `json:"epoch,omitempty"`    // ownership-lease epoch (cluster mode)
	EditSeq     uint64                  `json:"edit_seq,omitempty"` // replication seq the state includes
	Epsilon     float64                 `json:"epsilon,omitempty"`
	Parallelism int                     `json:"parallelism,omitempty"`
	Corners     []sta.Corner            `json:"corners,omitempty"`
	Options     sta.Options             `json:"options"`
	Netlist     *netlist.Netlist        `json:"netlist"`
	Trees       map[string]*rctree.Tree `json:"trees"`
}

// snapshotOf captures a design's current state. Must be called from the
// design's single-writer loop (or before the design serves edits), so the
// engine state and walSeq are coherent.
func snapshotOf(name string, eng *incsta.Engine, walSeq uint64) *designSnapshot {
	nl, trees := eng.CopyDesign()
	return &designSnapshot{
		Name:        name,
		WALSeq:      walSeq,
		Epsilon:     eng.Epsilon(),
		Parallelism: eng.Parallelism(),
		Corners:     eng.Corners(),
		Options:     eng.Options(),
		Netlist:     nl,
		Trees:       trees,
	}
}

func (st *Store) designsRoot() string { return filepath.Join(st.root, "designs") }

func (st *Store) designDir(name string) string {
	return filepath.Join(st.designsRoot(), url.PathEscape(name))
}

func (st *Store) snapshotPath(name string) string {
	return filepath.Join(st.designDir(name), "snapshot.json")
}

func (st *Store) walPath(name string) string {
	return filepath.Join(st.designDir(name), "wal.log")
}

// saveSnapshot persists snap crash-safely (temp file, fsync, rename, parent
// directory fsync): after any crash the design directory holds either the
// previous complete snapshot or the new one.
func (st *Store) saveSnapshot(snap *designSnapshot) error {
	dir := st.designDir(snap.Name)
	if err := st.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	t0 := time.Now()
	err := wal.AtomicWrite(st.fs, st.snapshotPath(snap.Name), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(snap)
	})
	if err != nil {
		return fmt.Errorf("server: persist snapshot of %q: %w", snap.Name, err)
	}
	mSnapshotsPersisted.Inc()
	hSnapshotSeconds.ObserveSince(t0)
	return nil
}

// loadSnapshot reads one design's persisted snapshot by escaped directory
// name.
func (st *Store) loadSnapshot(escaped string) (*designSnapshot, error) {
	p := filepath.Join(st.designsRoot(), escaped, "snapshot.json")
	f, err := st.fs.OpenFile(p, readOnlyFlag, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snap designSnapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("server: snapshot %s: %w", p, err)
	}
	if snap.Netlist == nil || snap.Trees == nil {
		return nil, fmt.Errorf("server: snapshot %s: missing netlist or trees", p)
	}
	return &snap, nil
}

// openWAL opens (creating if missing) a design's log, streaming valid
// records through replay.
func (st *Store) openWAL(name string, replay func(seq uint64, payload []byte) error) (*wal.Log, wal.OpenResult, error) {
	return wal.Open(st.walPath(name), wal.Options{
		FS:       st.fs,
		Policy:   st.cfg.Policy,
		Interval: st.cfg.FsyncInterval,
	}, replay)
}

// listDesigns returns the escaped directory names of every persisted design
// (empty when the store has never hosted one).
func (st *Store) listDesigns() ([]string, error) {
	names, err := st.fs.ReadDir(st.designsRoot())
	if err != nil {
		if isNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return names, nil
}

// removeDesign deletes a design's persisted state (called on DELETE so a
// restart does not resurrect it). The snapshot removal is made durable with
// a SyncDir of the design directory before that directory itself goes; a
// crash mid-way leaves at worst a snapshot-less directory, which recovery
// skips as debris.
func (st *Store) removeDesign(name string) error {
	dir := st.designDir(name)
	var firstErr error
	for _, p := range []string{st.snapshotPath(name), st.walPath(name)} {
		if err := st.fs.Remove(p); err != nil && !isNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}
	if err := st.fs.SyncDir(dir); err != nil && !isNotExist(err) && firstErr == nil {
		firstErr = err
	}
	if err := st.fs.Remove(dir); err != nil && !isNotExist(err) && firstErr == nil {
		firstErr = err
	}
	if err := st.fs.SyncDir(st.designsRoot()); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// hasSnapshot reports whether a persisted design directory holds a complete
// snapshot. A directory without one is debris — a crash between mkdir and
// the first atomic snapshot write, or between a DELETE's file and directory
// removals — and recovery skips it.
func (st *Store) hasSnapshot(escaped string) bool {
	f, err := st.fs.OpenFile(filepath.Join(st.designsRoot(), escaped, "snapshot.json"), readOnlyFlag, 0)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// --- replica persistence ---------------------------------------------------
//
// A replica's durable state mirrors the owner layout under replicas/: the
// last full snapshot the owner shipped plus a WAL of replicated edits whose
// record seqs equal the owner's replication seqs (EnsureSeq keeps them
// aligned). A promoted replica recovers a design from this subtree exactly
// like an owner recovers from designs/.

func (st *Store) replicasRoot() string { return filepath.Join(st.root, "replicas") }

func (st *Store) replicaDir(name string) string {
	return filepath.Join(st.replicasRoot(), url.PathEscape(name))
}

func (st *Store) replicaSnapshotPath(name string) string {
	return filepath.Join(st.replicaDir(name), "snapshot.json")
}

func (st *Store) replicaWALPath(name string) string {
	return filepath.Join(st.replicaDir(name), "wal.log")
}

// saveReplicaSnapshot persists a shipped snapshot crash-safely under the
// replica subtree.
func (st *Store) saveReplicaSnapshot(snap *designSnapshot) error {
	dir := st.replicaDir(snap.Name)
	if err := st.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	err := wal.AtomicWrite(st.fs, st.replicaSnapshotPath(snap.Name), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(snap)
	})
	if err != nil {
		return fmt.Errorf("server: persist replica snapshot of %q: %w", snap.Name, err)
	}
	return nil
}

// loadReplicaSnapshot reads one replicated design's snapshot by escaped
// directory name.
func (st *Store) loadReplicaSnapshot(escaped string) (*designSnapshot, error) {
	p := filepath.Join(st.replicasRoot(), escaped, "snapshot.json")
	f, err := st.fs.OpenFile(p, readOnlyFlag, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snap designSnapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("server: replica snapshot %s: %w", p, err)
	}
	if snap.Netlist == nil || snap.Trees == nil {
		return nil, fmt.Errorf("server: replica snapshot %s: missing netlist or trees", p)
	}
	return &snap, nil
}

// openReplicaWAL opens (creating if missing) a design's replicated edit
// tail, streaming valid records through replay.
func (st *Store) openReplicaWAL(name string, replay func(seq uint64, payload []byte) error) (*wal.Log, wal.OpenResult, error) {
	if err := st.fs.MkdirAll(st.replicaDir(name), 0o755); err != nil {
		return nil, wal.OpenResult{}, err
	}
	return wal.Open(st.replicaWALPath(name), wal.Options{
		FS:       st.fs,
		Policy:   st.cfg.Policy,
		Interval: st.cfg.FsyncInterval,
	}, replay)
}

// listReplicas returns the escaped directory names of every replicated
// design.
func (st *Store) listReplicas() ([]string, error) {
	names, err := st.fs.ReadDir(st.replicasRoot())
	if err != nil {
		if isNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return names, nil
}

// removeReplica deletes a design's replica state (promotion moved it under
// designs/, or a DELETE tombstone retired it).
func (st *Store) removeReplica(name string) error {
	dir := st.replicaDir(name)
	var firstErr error
	for _, p := range []string{st.replicaSnapshotPath(name), st.replicaWALPath(name)} {
		if err := st.fs.Remove(p); err != nil && !isNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}
	if err := st.fs.SyncDir(dir); err != nil && !isNotExist(err) && firstErr == nil {
		firstErr = err
	}
	if err := st.fs.Remove(dir); err != nil && !isNotExist(err) && firstErr == nil {
		firstErr = err
	}
	if err := st.fs.SyncDir(st.replicasRoot()); err != nil && !isNotExist(err) && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// hasReplicaSnapshot reports whether a replica directory holds a complete
// snapshot (directories without one are debris and recovery skips them).
func (st *Store) hasReplicaSnapshot(escaped string) bool {
	f, err := st.fs.OpenFile(filepath.Join(st.replicasRoot(), escaped, "snapshot.json"), readOnlyFlag, 0)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// --- lease persistence -----------------------------------------------------

func (st *Store) leasesPath() string { return filepath.Join(st.root, "leases.json") }

// saveLeases persists the lease table crash-safely. Durable promises are
// load-bearing: a node that promised epoch E, crashed, and forgot the
// promise could grant E again and break the at-most-one-winner property.
func (st *Store) saveLeases(m map[string]cluster.LeaseInfo) error {
	if err := st.fs.MkdirAll(st.root, 0o755); err != nil {
		return err
	}
	err := wal.AtomicWrite(st.fs, st.leasesPath(), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(m)
	})
	if err != nil {
		return fmt.Errorf("server: persist leases: %w", err)
	}
	return nil
}

// loadLeases reads the persisted lease table (empty map when none exists).
func (st *Store) loadLeases() (map[string]cluster.LeaseInfo, error) {
	f, err := st.fs.OpenFile(st.leasesPath(), readOnlyFlag, 0)
	if err != nil {
		if isNotExist(err) {
			return map[string]cluster.LeaseInfo{}, nil
		}
		return nil, err
	}
	defer f.Close()
	m := map[string]cluster.LeaseInfo{}
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("server: leases %s: %w", st.leasesPath(), err)
	}
	return m, nil
}

// rebuildEngine reconstructs a design's engine from its snapshot (one full
// analysis pass, same as the original load).
func rebuildEngine(lib *timinglib.File, snap *designSnapshot) (*incsta.Engine, error) {
	return incsta.New(lib, snap.Netlist, snap.Trees, incsta.Config{
		Options:     snap.Options,
		Epsilon:     snap.Epsilon,
		Corners:     sta.CornerSet{Corners: snap.Corners},
		Parallelism: snap.Parallelism,
	})
}
