package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/incsta"
	"repro/internal/libsynth"
)

// TestAdmissionLimiterRejectsWhenSaturated: with the semaphore held at
// capacity, a query times out of the admission queue and gets 503
// "overloaded"; after release it goes through.
func TestAdmissionLimiterRejectsWhenSaturated(t *testing.T) {
	s := New(libsynth.File(), WithAdmission(2, 10*time.Millisecond))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	loadC17(t, ts)

	// Saturate from the test: deterministic, no timing races.
	if !s.adm.acquire(context.Background(), 2) {
		t.Fatal("initial acquire failed")
	}
	var eb errorBody
	code, raw := do(t, http.MethodGet, ts.URL+"/v1/designs/c17", nil, &eb)
	if code != http.StatusServiceUnavailable || eb.Error.Code != codeOverloaded {
		t.Fatalf("saturated query: %d %s", code, raw)
	}

	s.adm.release(2)
	if code, raw := do(t, http.MethodGet, ts.URL+"/v1/designs/c17", nil, nil); code != http.StatusOK {
		t.Fatalf("query after release: %d %s", code, raw)
	}
}

// TestBatchWeighsItsQueryCount: a batch needs as many admission tokens as it
// has queries, so with 3 of 4 tokens held a two-query batch is rejected while
// a single-query batch still fits the remaining slot.
func TestBatchWeighsItsQueryCount(t *testing.T) {
	s := New(libsynth.File(), WithAdmission(4, 10*time.Millisecond))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	loadC17(t, ts)

	if !s.adm.acquire(context.Background(), 3) {
		t.Fatal("initial acquire failed")
	}
	defer s.adm.release(3)

	batch := func(n int) BatchRequest {
		req := BatchRequest{}
		for i := 0; i < n; i++ {
			req.Queries = append(req.Queries, BatchQuery{Kind: "summary"})
		}
		return req
	}
	var eb errorBody
	code, raw := do(t, http.MethodPost, ts.URL+"/v1/designs/c17/batch", batch(2), &eb)
	if code != http.StatusServiceUnavailable || eb.Error.Code != codeOverloaded {
		t.Fatalf("over-weight batch: %d %s", code, raw)
	}
	if code, raw := do(t, http.MethodPost, ts.URL+"/v1/designs/c17/batch", batch(1), nil); code != http.StatusOK {
		t.Fatalf("single-query batch: %d %s", code, raw)
	}
}

// stuckDesign builds a design with a bounded queue and NO writer loop, so the
// queue state is fully deterministic: nothing ever drains it. The engine is
// nil — edits must be rejected before they reach it.
func stuckDesign(depth int) *design {
	return &design{
		name: "stuck",
		reqs: make(chan editReq, depth),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// TestEditQueueFullRejects: a design whose bounded edit queue is full answers
// 503 "overloaded" instead of buffering without limit.
func TestEditQueueFullRejects(t *testing.T) {
	s, ts := newTestServer(t)
	d := stuckDesign(2)
	s.mu.Lock()
	s.designs[d.name] = d
	s.mu.Unlock()

	// Fill the queue.
	d.reqs <- editReq{}
	d.reqs <- editReq{}

	var eb errorBody
	code, raw := do(t, http.MethodPost, ts.URL+"/v1/designs/stuck/edits",
		EditRequest{Op: "resize", Gate: "U1", Strength: 4}, &eb)
	if code != http.StatusServiceUnavailable || eb.Error.Code != codeOverloaded {
		t.Fatalf("full queue: %d %s", code, raw)
	}

	// Remove the loop-less design before Server.Close, which would block on
	// d.done.
	s.mu.Lock()
	delete(s.designs, d.name)
	s.mu.Unlock()
}

// TestEditWaitHonorsClientDisconnect: a submit whose context dies while
// waiting for the writer returns the context error instead of blocking
// forever on a reply that is not coming.
func TestEditWaitHonorsClientDisconnect(t *testing.T) {
	d := stuckDesign(4)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := d.submit(ctx, incsta.Edit{Op: incsta.OpResize, Gate: "U1", Strength: 4})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond) // let it enqueue and start waiting
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("submit returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("submit did not honor the cancelled context")
	}
}

// TestMaxBodyBytesRejectsHugeLoad: a design-load body over the configured
// limit gets 413 "payload_too_large"; one within it still loads.
func TestMaxBodyBytesRejectsHugeLoad(t *testing.T) {
	s := New(libsynth.File(), WithMaxBodyBytes(512))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	big := LoadRequest{Bench: c17Bench + "\n# " + strings.Repeat("x", 4096)}
	var eb errorBody
	code, raw := do(t, http.MethodPut, ts.URL+"/v1/designs/huge", big, &eb)
	if code != http.StatusRequestEntityTooLarge || eb.Error.Code != codePayloadLarge {
		t.Fatalf("oversized load: %d %s", code, raw)
	}
	if code, raw := do(t, http.MethodPut, ts.URL+"/v1/designs/ok", LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("in-limit load: %d %s", code, raw)
	}
}

// TestBatchStopsOnCancelledContext: a dead client mid-batch stops the
// evaluation loop instead of computing answers nobody will read.
func TestBatchStopsOnCancelledContext(t *testing.T) {
	s, ts := newTestServer(t)
	loadC17(t, ts)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // client is already gone
	body := `{"queries":[{"kind":"summary"},{"kind":"paths","k":3},{"kind":"slacks","period_ps":500}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/designs/c17/batch", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Body.Len() != 0 {
		t.Fatalf("cancelled batch still produced a %d-byte response: %s", rec.Body.Len(), rec.Body.String())
	}
}
