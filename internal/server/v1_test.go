package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// jsonUnmarshal decodes strictly: unknown fields mean the body is not the
// expected shape.
func jsonUnmarshal(raw string, out any) error {
	dec := json.NewDecoder(strings.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(out)
}

// decodeEnvelope asserts a response body is the v1 error envelope and
// returns its code and message.
func decodeEnvelope(t *testing.T, raw string) (code, message string) {
	t.Helper()
	var body errorBody
	if err := jsonUnmarshal(raw, &body); err != nil {
		t.Fatalf("response is not the error envelope: %q (%v)", raw, err)
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %q", raw)
	}
	return body.Error.Code, body.Error.Message
}

// loadC17V1 loads the c17 fixture through the canonical v1 route.
func loadC17V1(t *testing.T, ts *httptest.Server, name string, req LoadRequest) DesignSummary {
	t.Helper()
	if req.Bench == "" && req.Circuit == "" {
		req.Bench = c17Bench
	}
	var sum DesignSummary
	code, raw := do(t, http.MethodPut, ts.URL+"/v1/designs/"+name, req, &sum)
	if code != http.StatusCreated {
		t.Fatalf("load %s: status %d: %s", name, code, raw)
	}
	return sum
}

// TestV1RoutesAndLegacyShims checks every resource resolves under /v1
// without deprecation headers, and under the bare legacy path with RFC 8594
// Deprecation + successor Link headers.
func TestV1RoutesAndLegacyShims(t *testing.T) {
	_, ts := newTestServer(t)
	loadC17V1(t, ts, "c17", LoadRequest{})

	paths := []string{
		"/designs",
		"/designs/c17",
		"/designs/c17/gates",
		"/designs/c17/paths?k=2",
		"/designs/c17/slacks?period_ps=6000",
	}
	for _, p := range paths {
		resp, err := http.Get(ts.URL + "/v1" + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1%s: status %d", p, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "" {
			t.Fatalf("GET /v1%s: canonical route carries a Deprecation header", p)
		}

		resp, err = http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s (legacy): status %d", p, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatalf("GET %s (legacy): missing Deprecation header", p)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/designs") ||
			!strings.Contains(link, "successor-version") {
			t.Fatalf("GET %s (legacy): bad successor Link header %q", p, link)
		}
	}
}

// TestErrorEnvelopeShapes drives the error paths the issue names and
// asserts each answers with the {"error":{code,message}} envelope and a
// stable code.
func TestErrorEnvelopeShapes(t *testing.T) {
	_, ts := newTestServer(t)
	loadC17V1(t, ts, "c17", LoadRequest{})

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed load JSON", "PUT", "/v1/designs/x", "{not json", http.StatusBadRequest, "invalid_request"},
		{"both circuit and bench", "PUT", "/v1/designs/x", `{"circuit":"c432","bench":"x"}`, http.StatusBadRequest, "invalid_request"},
		{"neither circuit nor bench", "PUT", "/v1/designs/x", `{}`, http.StatusBadRequest, "invalid_request"},
		{"bad corner", "PUT", "/v1/designs/x", `{"circuit":"c432","corners":[{"cap_scale":-1}]}`, http.StatusBadRequest, "invalid_request"},
		{"duplicate design", "PUT", "/v1/designs/c17", `{"bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"}`, http.StatusConflict, "already_exists"},
		{"unknown design summary", "GET", "/v1/designs/ghost", "", http.StatusNotFound, "not_found"},
		{"unknown design delete", "DELETE", "/v1/designs/ghost", "", http.StatusNotFound, "not_found"},
		{"unknown design edit", "POST", "/v1/designs/ghost/edits", `{"op":"resize"}`, http.StatusNotFound, "not_found"},
		{"malformed edit JSON", "POST", "/v1/designs/c17/edits", "{", http.StatusBadRequest, "invalid_request"},
		{"unknown edit op", "POST", "/v1/designs/c17/edits", `{"op":"explode"}`, http.StatusBadRequest, "invalid_request"},
		{"rejected edit", "POST", "/v1/designs/c17/edits", `{"op":"resize","gate":"nope","strength":4}`, http.StatusBadRequest, "edit_rejected"},
		{"bad paths k", "GET", "/v1/designs/c17/paths?k=0", "", http.StatusBadRequest, "invalid_request"},
		{"unknown corner", "GET", "/v1/designs/c17/paths?corner=ghost", "", http.StatusBadRequest, "invalid_request"},
		{"missing period", "GET", "/v1/designs/c17/slacks", "", http.StatusBadRequest, "invalid_request"},
		{"malformed batch JSON", "POST", "/v1/designs/c17/batch", "{", http.StatusBadRequest, "invalid_request"},
		{"empty batch", "POST", "/v1/designs/c17/batch", `{"queries":[]}`, http.StatusBadRequest, "invalid_request"},
		{"unknown route", "GET", "/v2/designs", "", http.StatusNotFound, "unknown_route"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw := readAll(t, resp)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, raw)
			}
			code, _ := decodeEnvelope(t, raw)
			if code != tc.wantCode {
				t.Fatalf("error code %q, want %q: %s", code, tc.wantCode, raw)
			}
		})
	}
}

// TestBatchEndpoint covers the pinned-snapshot batch: mixed query kinds,
// per-query errors that don't fail siblings, and the oversize rejection.
func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	loadC17V1(t, ts, "c17", LoadRequest{
		Corners: []CornerSpec{{Name: "typ"}, {Name: "slow", CapScale: 1.2}},
	})

	var resp BatchResponse
	code, raw := do(t, http.MethodPost, ts.URL+"/v1/designs/c17/batch", BatchRequest{
		Queries: []BatchQuery{
			{Kind: "summary"},
			{Kind: "summary", Corner: "slow"},
			{Kind: "paths", K: 2, Corner: "slow"},
			{Kind: "slacks", PeriodPs: 6000},
			{Kind: "paths", Corner: "ghost"}, // per-query error
			{Kind: "nonsense"},               // per-query error
		},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, raw)
	}
	if len(resp.Results) != 6 {
		t.Fatalf("batch returned %d results, want 6", len(resp.Results))
	}
	for i := 0; i < 4; i++ {
		if resp.Results[i].Error != nil {
			t.Fatalf("query %d failed: %+v", i, resp.Results[i].Error)
		}
		if resp.Results[i].Result == nil {
			t.Fatalf("query %d has no result", i)
		}
	}
	for i := 4; i < 6; i++ {
		if resp.Results[i].Error == nil || resp.Results[i].Error.Code != "invalid_request" {
			t.Fatalf("query %d should have failed with invalid_request: %+v", i, resp.Results[i])
		}
	}
	if resp.Version == 0 {
		t.Fatal("batch response carries no snapshot version")
	}

	// Oversized batch → 413 with the envelope.
	big := BatchRequest{Queries: make([]BatchQuery, maxBatchQueries+1)}
	for i := range big.Queries {
		big.Queries[i] = BatchQuery{Kind: "summary"}
	}
	codeBig, rawBig := do(t, http.MethodPost, ts.URL+"/v1/designs/c17/batch", big, nil)
	if codeBig != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d: %s", codeBig, rawBig)
	}
	if c, _ := decodeEnvelope(t, rawBig); c != "batch_too_large" {
		t.Fatalf("oversized batch: code %q", c)
	}
}

// TestMultiCornerQueries loads a design with two corners and checks the
// ?corner= parameter selects distinct results across summary, paths and
// slacks.
func TestMultiCornerQueries(t *testing.T) {
	_, ts := newTestServer(t)
	sum := loadC17V1(t, ts, "c17", LoadRequest{
		Corners: []CornerSpec{{Name: "typ"}, {Name: "slow", CapScale: 1.5}},
	})
	if sum.Corner != "typ" || len(sum.Corners) != 2 {
		t.Fatalf("load summary corners: %q %v", sum.Corner, sum.Corners)
	}

	var typ, slow DesignSummary
	do(t, http.MethodGet, ts.URL+"/v1/designs/c17?corner=typ", nil, &typ)
	do(t, http.MethodGet, ts.URL+"/v1/designs/c17?corner=slow", nil, &slow)
	if typ.Corner != "typ" || slow.Corner != "slow" {
		t.Fatalf("summary corner labels: %q / %q", typ.Corner, slow.Corner)
	}
	if slow.ArrivalPs["0"] <= typ.ArrivalPs["0"] {
		t.Fatalf("cap-derated corner should be slower: slow %v vs typ %v",
			slow.ArrivalPs["0"], typ.ArrivalPs["0"])
	}

	var sl struct {
		WNS float64 `json:"wns_ps"`
	}
	do(t, http.MethodGet, ts.URL+"/v1/designs/c17/slacks?period_ps=6000&corner=typ", nil, &sl)
	typWNS := sl.WNS
	do(t, http.MethodGet, ts.URL+"/v1/designs/c17/slacks?period_ps=6000&corner=slow", nil, &sl)
	if sl.WNS >= typWNS {
		t.Fatalf("slow corner WNS %v should be worse than typ %v", sl.WNS, typWNS)
	}
}

// TestConcurrentDeleteWhileQuerying hammers queries and batches against a
// design that is deleted mid-flight: every response must be either a
// well-formed success or a well-formed envelope error — never a hang, panic
// or malformed body.
func TestConcurrentDeleteWhileQuerying(t *testing.T) {
	_, ts := newTestServer(t)
	loadC17V1(t, ts, "c17", LoadRequest{})

	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 25; i++ {
				var url string
				switch i % 3 {
				case 0:
					url = ts.URL + "/v1/designs/c17"
				case 1:
					url = ts.URL + "/v1/designs/c17/paths?k=2"
				case 2:
					url = ts.URL + "/v1/designs/c17/slacks?period_ps=6000"
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				raw := readAll(t, resp)
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusNotFound:
					var body errorBody
					if err := jsonUnmarshal(raw, &body); err != nil || body.Error.Code != "not_found" {
						errs <- fmt.Errorf("worker %d: 404 without envelope: %s", w, raw)
						return
					}
				default:
					errs <- fmt.Errorf("worker %d: unexpected status %d: %s", w, resp.StatusCode, raw)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/designs/c17", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errs <- err
			return
		}
		resp.Body.Close()
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
