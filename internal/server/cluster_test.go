package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/libsynth"
)

// clusterNode is one in-process timingd node of a test cluster.
type clusterNode struct {
	s    *Server
	ts   *httptest.Server
	node *cluster.Node
	url  string
}

// newTestCluster boots n in-memory nodes that know about each other, each
// serving on a real TCP port (the ring hashes peer URLs, so the listeners
// come first). Heartbeats and replication run at test cadence.
func newTestCluster(t *testing.T, n int, proxy bool) []*clusterNode {
	t.Helper()
	return newTestClusterWith(t, n, proxy, nil)
}

// newTestClusterWith is newTestCluster plus per-node extra server options
// (optFor may be nil; it receives the node index).
func newTestClusterWith(t *testing.T, n int, proxy bool, optFor func(i int) []Option) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cn, err := cluster.NewNode(cluster.Config{
			Self:              urls[i],
			Peers:             urls,
			Replicas:          1,
			Proxy:             proxy,
			HeartbeatInterval: 25 * time.Millisecond,
			HeartbeatTimeout:  250 * time.Millisecond,
			FailAfter:         2,
			BreakerCooldown:   250 * time.Millisecond,
			ReplicateInterval: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cn.Start()
		opts := []Option{WithCluster(cn)}
		if optFor != nil {
			opts = append(opts, optFor(i)...)
		}
		s := New(libsynth.File(), opts...)
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		nodes[i] = &clusterNode{s: s, ts: ts, node: cn, url: urls[i]}
	}
	t.Cleanup(func() {
		for _, cn := range nodes {
			cn.ts.Close()
			cn.s.Close()
			cn.node.Close()
		}
	})
	return nodes
}

// byRole picks the owner node, a replica node, and a node that is neither,
// for one design name.
func byRole(t *testing.T, nodes []*clusterNode, name string) (owner, replica, neither *clusterNode) {
	t.Helper()
	for _, cn := range nodes {
		switch _, isOwner, isReplica := cn.node.Role(name); {
		case isOwner:
			owner = cn
		case isReplica:
			replica = cn
		default:
			neither = cn
		}
	}
	if owner == nil || replica == nil || neither == nil {
		t.Fatalf("3-node cluster must give one node per role for %q", name)
	}
	return owner, replica, neither
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// clusterGates fetches a loaded design's gate list through any node.
func clusterGates(t *testing.T, base, name string) []GateInfo {
	t.Helper()
	var resp struct {
		Gates []GateInfo `json:"gates"`
	}
	code, raw := do(t, http.MethodGet, base+"/v1/designs/"+name+"/gates", nil, &resp)
	if code != http.StatusOK || len(resp.Gates) == 0 {
		t.Fatalf("gates: status %d: %s", code, raw)
	}
	return resp.Gates
}

// noRedirect issues a request without following redirects.
func noRedirect(t *testing.T, method, url string, body any) *http.Response {
	t.Helper()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	var req *http.Request
	var err error
	if body != nil {
		b, merr := json.Marshal(body)
		if merr != nil {
			t.Fatal(merr)
		}
		req, err = http.NewRequest(method, url, strings.NewReader(string(b)))
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestClusterRedirectsEditsToOwner(t *testing.T) {
	nodes := newTestCluster(t, 3, false)
	const name = "c17-redirect"
	owner, _, neither := byRole(t, nodes, name)

	// A PUT at a non-owner answers 307 with the owner in Location.
	resp := noRedirect(t, http.MethodPut, neither.url+"/v1/designs/"+name, LoadRequest{Bench: c17Bench})
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("PUT at non-owner = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, owner.url) {
		t.Fatalf("Location = %q, want owner prefix %q", loc, owner.url)
	}

	// A client following the redirect lands the design on the owner (do()
	// uses http.DefaultClient, which replays the 307 with the body).
	var sum DesignSummary
	if code, raw := do(t, http.MethodPut, neither.url+"/v1/designs/"+name, LoadRequest{Bench: c17Bench}, &sum); code != http.StatusCreated {
		t.Fatalf("redirected PUT = %d: %s", code, raw)
	}
	if _, ok := owner.s.design(name); !ok {
		t.Fatal("design not loaded on the owner")
	}
	// Reads at the owner work directly.
	if code, raw := do(t, http.MethodGet, owner.url+"/v1/designs/"+name, nil, nil); code != http.StatusOK {
		t.Fatalf("GET at owner = %d: %s", code, raw)
	}
}

func TestClusterProxyReplicationAndBitIdentity(t *testing.T) {
	nodes := newTestCluster(t, 3, true)
	const name = "c17-proxy"
	owner, replica, neither := byRole(t, nodes, name)

	// Load and edit through a node that owns nothing: the proxy path.
	var sum DesignSummary
	if code, raw := do(t, http.MethodPut, neither.url+"/v1/designs/"+name, LoadRequest{Bench: c17Bench}, &sum); code != http.StatusCreated {
		t.Fatalf("proxied PUT = %d: %s", code, raw)
	}
	gates := clusterGates(t, neither.url, name)
	for _, g := range gates[:3] {
		var er EditResponse
		if code, raw := do(t, http.MethodPost, neither.url+"/v1/designs/"+name+"/edits",
			EditRequest{Op: "resize", Gate: g.Name, Strength: 8}, &er); code != http.StatusOK {
			t.Fatalf("proxied edit = %d: %s", code, raw)
		}
	}
	ownerVersion := func() uint64 {
		d, ok := owner.s.design(name)
		if !ok {
			t.Fatal("owner lost the design")
		}
		return d.eng.Snapshot().Version()
	}
	want := ownerVersion()

	// The replica converges to the owner's version, and its slacks are
	// byte-identical to the owner's for the same sequence (Go's JSON map
	// encoding is key-sorted, so identical payloads are identical bytes).
	slacksURL := func(base string) string {
		return base + "/v1/designs/" + name + "/slacks?period_ps=2000&level=3"
	}
	var fromOwner, fromReplica string
	waitUntil(t, "replica to converge to the owner's sequence", func() bool {
		rep := replica.s.replica(name)
		if rep == nil {
			return false
		}
		d, ok := owner.s.design(name)
		if !ok {
			t.Fatal("owner lost the design")
		}
		if _, seq, _ := rep.view(); seq != d.seq.Load() {
			return false
		}
		var code int
		code, fromOwner = do(t, http.MethodGet, slacksURL(owner.url), nil, nil)
		if code != http.StatusOK {
			return false
		}
		code, fromReplica = do(t, http.MethodGet, slacksURL(replica.url), nil, nil)
		return code == http.StatusOK
	})
	if fromOwner != fromReplica {
		t.Fatalf("replica slacks diverge from owner at the same seq:\nowner:   %s\nreplica: %s", fromOwner, fromReplica)
	}
	if !strings.Contains(fromReplica, fmt.Sprintf(`"version":%d`, want)) {
		t.Fatalf("replica payload does not report the shipped sequence %d: %s", want, fromReplica)
	}

	// Batch reads served by the replica pin the same shipped sequence.
	var br BatchResponse
	if code, raw := do(t, http.MethodPost, replica.url+"/v1/designs/"+name+"/batch",
		BatchRequest{Queries: []BatchQuery{{Kind: "summary"}, {Kind: "slacks", PeriodPs: 2000}}}, &br); code != http.StatusOK {
		t.Fatalf("replica batch = %d: %s", code, raw)
	} else if br.Version != want {
		t.Fatalf("replica batch version = %d, want %d", br.Version, want)
	}
}

func TestClusterLoopPrevention(t *testing.T) {
	nodes := newTestCluster(t, 3, true)
	const name = "c17-loop"
	_, _, neither := byRole(t, nodes, name)

	// A request already carrying the forward header must not hop again.
	req, err := http.NewRequest(http.MethodGet, neither.url+"/v1/designs/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Timingd-Forward", "http://elsewhere:1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMisdirectedRequest || eb.Error.Code != codeWrongNode {
		t.Fatalf("double-forward = %d/%s, want 421/%s", resp.StatusCode, eb.Error.Code, codeWrongNode)
	}
}

// TestClusterSurvivesReplicaKill is the acceptance scenario: 3 nodes, a
// replicated design, one replica killed hard — reads and writes keep
// serving from the survivors, and the ring heals around the dead peer.
func TestClusterSurvivesReplicaKill(t *testing.T) {
	nodes := newTestCluster(t, 3, true)
	const name = "c17-kill"
	owner, replica, neither := byRole(t, nodes, name)

	var sum DesignSummary
	if code, raw := do(t, http.MethodPut, owner.url+"/v1/designs/"+name, LoadRequest{Bench: c17Bench}, &sum); code != http.StatusCreated {
		t.Fatalf("PUT = %d: %s", code, raw)
	}
	waitUntil(t, "initial replication", func() bool {
		return replica.s.replica(name) != nil
	})

	// Kill the replica hard: close its listener and all live connections.
	replica.ts.CloseClientConnections()
	replica.ts.Close()

	// Reads and writes through the survivors never stop serving. Before
	// ejection the read path is owner-local (non-owner forwards to the
	// owner, never to a replica), so there is no unavailability window.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if code, raw := do(t, http.MethodGet, neither.url+"/v1/designs/"+name+"/slacks?period_ps=2000", nil, nil); code != http.StatusOK {
			t.Fatalf("read via survivor = %d after replica kill: %s", code, raw)
		}
		time.Sleep(25 * time.Millisecond)
	}
	gates := clusterGates(t, neither.url, name)
	var er EditResponse
	if code, raw := do(t, http.MethodPost, neither.url+"/v1/designs/"+name+"/edits",
		EditRequest{Op: "resize", Gate: gates[0].Name, Strength: 4}, &er); code != http.StatusOK {
		t.Fatalf("edit via survivor = %d after replica kill: %s", code, raw)
	}

	// The owner's heartbeats eject the dead peer; the surviving third node
	// becomes the design's replica and receives the state.
	waitUntil(t, "dead peer ejected from owner's ring", func() bool {
		for _, p := range owner.node.Ring().Peers() {
			if p == replica.url {
				return false
			}
		}
		return true
	})
	waitUntil(t, "survivor promoted to replica and caught up", func() bool {
		_, _, isReplica := neither.node.Role(name)
		if !isReplica {
			return false
		}
		rep := neither.s.replica(name)
		if rep == nil {
			return false
		}
		d, ok := owner.s.design(name)
		if !ok {
			return false
		}
		_, seq, _ := rep.view()
		return seq == d.seq.Load()
	})
}
