package server

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/libsynth"
	"repro/internal/obs"
)

const testTraceparent = "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"

func TestRequestIDMintedAndEchoed(t *testing.T) {
	_, ts := newTestServer(t)

	// No client ID: the server mints a 32-hex one.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rid := resp.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(rid) {
		t.Fatalf("minted request id %q, want 32 hex digits", rid)
	}

	// A valid client ID is echoed verbatim — including on error envelopes.
	for _, path := range []string{"/v1/healthz", "/v1/designs/absent", "/no/such/route"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("X-Request-ID", "client-id-42")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-ID"); got != "client-id-42" {
			t.Errorf("%s: echoed %q, want client-id-42 (status %d)", path, got, resp.StatusCode)
		}
	}

	// An invalid client ID (header-splitting, oversized) is replaced.
	for _, bad := range []string{"with space", "semi;colon", strings.Repeat("x", 200)} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
		req.Header.Set("X-Request-ID", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-ID"); got == bad || got == "" {
			t.Errorf("invalid id %q: echoed %q, want a minted replacement", bad, got)
		}
	}
}

func TestTraceparentEchoAndSampling(t *testing.T) {
	tr := obs.NewTracer()
	tr.Enable(0)
	s := New(libsynth.File(), WithTracer(tr))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// Sampled incoming traceparent: the response carries the request span's
	// position — same trace ID, a fresh span ID.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("traceparent", testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tc, perr := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if perr != nil {
		t.Fatalf("response traceparent %q: %v", resp.Header.Get("traceparent"), perr)
	}
	if tc.TraceIDString() != "0123456789abcdef0123456789abcdef" || !tc.Sampled {
		t.Fatalf("response traceparent %+v lost identity", tc)
	}
	if tc.SpanIDString() == "0123456789abcdef" {
		t.Fatal("response must carry the server span's ID, not the client's")
	}
	if tr.Len() != 1 {
		t.Fatalf("sampled request recorded %d spans, want 1", tr.Len())
	}

	// Unsampled incoming traceparent: no span recorded, flags 00 propagated.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("traceparent", strings.TrimSuffix(testTraceparent, "01")+"00")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.Len() != 1 {
		t.Fatalf("unsampled request recorded a span (%d total)", tr.Len())
	}
	if tp := resp.Header.Get("traceparent"); !strings.HasSuffix(tp, "-00") {
		t.Fatalf("unsampled response traceparent %q, want flags 00", tp)
	}

	// No traceparent, no sampling configured: no trace headers, no span.
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tp := resp.Header.Get("traceparent"); tp != "" {
		t.Fatalf("untraced response carries traceparent %q", tp)
	}
	if tr.Len() != 1 {
		t.Fatalf("untraced request recorded a span (%d total)", tr.Len())
	}
}

func TestTraceSamplingMintsTraces(t *testing.T) {
	tr := obs.NewTracer()
	tr.Enable(0)
	s := New(libsynth.File(), WithTracer(tr), WithTraceSampling(1))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := obs.ParseTraceparent(resp.Header.Get("traceparent")); err != nil {
		t.Fatalf("rate-1 sampling: response traceparent %q: %v", resp.Header.Get("traceparent"), err)
	}
	if tr.Len() != 1 {
		t.Fatalf("rate-1 sampling recorded %d spans, want 1", tr.Len())
	}
}

func TestRequestLogCarriesRequestID(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s := New(libsynth.File(), WithLogger(logger))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "log-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), "request_id=log-probe-1") {
		t.Fatalf("access log missing request id:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "level=INFO") {
		t.Fatalf("user request must log at info:\n%s", buf.String())
	}

	// Cluster-internal calls log at debug, keeping info logs user-only.
	buf.Reset()
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set(cluster.InternalHeader, "heartbeat")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := buf.String()
	if !strings.Contains(out, "level=DEBUG") || strings.Contains(out, "level=INFO") {
		t.Fatalf("internal request must log at debug only:\n%s", out)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}

func TestInternalTrafficSeparateMetrics(t *testing.T) {
	s := New(libsynth.File())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	counts := func(out string) (user, internal float64) {
		re := regexp.MustCompile(`(?m)^timingd_(cluster_)?requests_total\{route="GET /v1/healthz"\} (\S+)$`)
		for _, m := range re.FindAllStringSubmatch(out, -1) {
			var v float64
			fmt.Sscanf(m[2], "%g", &v)
			if m[1] == "cluster_" {
				internal = v
			} else {
				user = v
			}
		}
		return
	}
	u0, i0 := counts(scrape())

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set(cluster.InternalHeader, "heartbeat")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp2, err := http.Get(ts.URL + "/v1/healthz"); err == nil {
		resp2.Body.Close()
	}

	u1, i1 := counts(scrape())
	if i1 != i0+1 {
		t.Errorf("internal healthz count %g → %g, want +1", i0, i1)
	}
	if u1 != u0+1 {
		t.Errorf("user healthz count %g → %g, want +1 (internal call leaked into user series?)", u0, u1)
	}
}

func TestSlowLogRecordsAndBounds(t *testing.T) {
	s := New(libsynth.File(), WithSlowLogSize(2))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	if code, raw := do(t, http.MethodPut, ts.URL+"/v1/designs/c17", LoadRequest{
		Bench: c17Bench, Corners: []CornerSpec{{Name: "fast"}, {Name: "slow", CapScale: 1.2}},
	}, nil); code != http.StatusCreated {
		t.Fatalf("load: %d %s", code, raw)
	}
	for i := 0; i < 5; i++ {
		if code, raw := do(t, http.MethodGet, ts.URL+"/v1/designs/c17", nil, nil); code != http.StatusOK {
			t.Fatalf("summary: %d %s", code, raw)
		}
	}

	var out struct {
		Capacity int         `json:"capacity"`
		Slowest  []slowEntry `json:"slowest"`
	}
	if code, raw := do(t, http.MethodGet, ts.URL+"/v1/debug/slow", nil, &out); code != http.StatusOK {
		t.Fatalf("debug/slow: %d %s", code, raw)
	}
	if out.Capacity != 2 || len(out.Slowest) != 2 {
		t.Fatalf("capacity %d entries %d, want 2/2", out.Capacity, len(out.Slowest))
	}
	for i, e := range out.Slowest {
		if e.RequestID == "" || e.Method == "" || e.Status == 0 {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
		if i > 0 && e.DurationMS > out.Slowest[i-1].DurationMS {
			t.Error("entries not sorted slowest-first")
		}
	}
	// At least one kept entry should be the design-scoped query with its
	// corner count resolved (the load PUT itself also qualifies).
	seenDesign := false
	for _, e := range out.Slowest {
		if e.Design == "c17" {
			seenDesign = true
			if e.Corners != 2 && e.Method == http.MethodGet {
				t.Errorf("design query entry has %d corners, want 2: %+v", e.Corners, e)
			}
		}
	}
	if !seenDesign {
		t.Errorf("no design-scoped entry kept: %+v", out.Slowest)
	}
}

func TestSlowLogKeepsSlowest(t *testing.T) {
	sl := newSlowLog(2)
	sl.record(slowEntry{Path: "/a"}, 10*time.Millisecond)
	sl.record(slowEntry{Path: "/b"}, 30*time.Millisecond)
	if !sl.wouldRecord(20 * time.Millisecond) {
		t.Fatal("20ms must evict the 10ms entry")
	}
	sl.record(slowEntry{Path: "/c"}, 20*time.Millisecond)
	if sl.wouldRecord(5 * time.Millisecond) {
		t.Fatal("5ms must not enter a full log of 20/30ms")
	}
	got := sl.snapshot()
	if len(got) != 2 || got[0].Path != "/b" || got[1].Path != "/c" {
		t.Fatalf("snapshot %+v, want [/b /c]", got)
	}
}
