package server

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestClusterTraceCorrelation is the acceptance path: a traced request
// proxied through a non-owner node yields the same X-Request-ID on the
// client response and in both nodes' logs, and the two nodes' trace files
// merge into one trace whose spans link across nodes.
func TestClusterTraceCorrelation(t *testing.T) {
	tracers := make([]*obs.Tracer, 3)
	logs := make([]*syncBuffer, 3)
	nodes := newTestClusterWith(t, 3, true, func(i int) []Option {
		tracers[i] = obs.NewTracer()
		tracers[i].Enable(0)
		logs[i] = &syncBuffer{}
		return []Option{
			WithTracer(tracers[i]),
			WithLogger(slog.New(slog.NewTextHandler(logs[i], nil))),
		}
	})
	const name = "c17-traced"
	owner, _, neither := byRole(t, nodes, name)
	ownerIdx, neitherIdx := -1, -1
	for i, cn := range nodes {
		switch cn {
		case owner:
			ownerIdx = i
		case neither:
			neitherIdx = i
		}
	}

	if code, raw := do(t, http.MethodPut, owner.url+"/v1/designs/"+name, LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("load: %d %s", code, raw)
	}

	// The traced request: client-fixed request ID and sampled traceparent,
	// sent to the NEITHER node, which must proxy it to the owner.
	const rid = "trace-probe-7"
	req, _ := http.NewRequest(http.MethodGet, neither.url+"/v1/designs/"+name, nil)
	req.Header.Set("X-Request-ID", rid)
	req.Header.Set("traceparent", testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied GET: %d", resp.StatusCode)
	}
	if got := resp.Header.Values("X-Request-ID"); len(got) != 1 || got[0] != rid {
		t.Fatalf("proxied response X-Request-ID %v, want exactly [%s]", got, rid)
	}
	tp, err := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if err != nil || len(resp.Header.Values("traceparent")) != 1 {
		t.Fatalf("proxied response traceparent %v: %v", resp.Header.Values("traceparent"), err)
	}
	if tp.TraceIDString() != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("proxied response trace id %s", tp.TraceIDString())
	}

	// Both the proxying node and the owner logged the same request ID.
	waitUntil(t, "request id in both nodes' logs", func() bool {
		return strings.Contains(logs[neitherIdx].String(), "request_id="+rid) &&
			strings.Contains(logs[ownerIdx].String(), "request_id="+rid)
	})

	// Export both nodes' traces and merge them.
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "neither.json"), filepath.Join(dir, "owner.json")}
	if err := tracers[neitherIdx].WriteFile(paths[0]); err != nil {
		t.Fatal(err)
	}
	if err := tracers[ownerIdx].WriteFile(paths[1]); err != nil {
		t.Fatal(err)
	}
	m, err := obs.MergeTraceFiles(paths, obs.MergeOptions{TraceID: "0123456789abcdef0123456789abcdef"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Traces != 1 || m.Spans < 3 {
		t.Fatalf("merged traces=%d spans=%d, want 1 trace with >=3 spans (request, proxy hop, owner request)", m.Traces, m.Spans)
	}
	if m.Flows < 1 {
		t.Fatal("merged trace has no cross-node flow arrow")
	}

	// Parent links: the owner-side request span's parent must be a span
	// recorded on the neither node (the proxy hop).
	type span struct {
		pid      int
		spanID   string
		parentID string
	}
	var spans []span
	ids := map[string]int{} // span id → pid
	for _, ev := range m.TraceEvents {
		args, _ := ev["args"].(map[string]any)
		if args == nil {
			continue
		}
		sid, _ := args["span_id"].(string)
		if sid == "" {
			continue
		}
		pid, _ := ev["pid"].(int)
		par, _ := args["parent_span_id"].(string)
		spans = append(spans, span{pid: pid, spanID: sid, parentID: par})
		ids[sid] = pid
	}
	crossLinked := false
	for _, sp := range spans {
		if sp.parentID == "" {
			continue
		}
		if ppid, ok := ids[sp.parentID]; ok && ppid != sp.pid {
			crossLinked = true
		}
	}
	if !crossLinked {
		t.Fatalf("no span links to a parent on the other node: %+v", spans)
	}
}

// TestClusterRedirectEchoesCorrelation covers the redirect (non-proxy) path:
// the 307 from a non-owner and the owner's answer after following it both
// echo the client's request ID.
func TestClusterRedirectEchoesCorrelation(t *testing.T) {
	nodes := newTestCluster(t, 3, false)
	const name = "c17-redir-trace"
	owner, _, neither := byRole(t, nodes, name)

	if code, raw := do(t, http.MethodPut, owner.url+"/v1/designs/"+name, LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("load: %d %s", code, raw)
	}

	const rid = "redir-probe-3"
	req, _ := http.NewRequest(http.MethodGet, neither.url+"/v1/designs/"+name, nil)
	req.Header.Set("X-Request-ID", rid)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner GET: %d, want 307", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("307 X-Request-ID %q, want %s", got, rid)
	}

	// Follow the redirect by hand, as a client library would (it re-sends
	// the original headers on the new location).
	req2, _ := http.NewRequest(http.MethodGet, resp.Header.Get("Location"), nil)
	req2.Header.Set("X-Request-ID", rid)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var sum DesignSummary
	if err := json.NewDecoder(resp2.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || sum.Name != name {
		t.Fatalf("redirected GET: %d %+v", resp2.StatusCode, sum)
	}
	if got := resp2.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("owner response X-Request-ID %q, want %s", got, rid)
	}
}

// TestForwardPreservesPeerHeaders pins the proxy-hop header fix: a peer's
// Retry-After and correlation headers pass through a proxied response
// without duplication.
func TestForwardPreservesPeerHeaders(t *testing.T) {
	nodes := newTestCluster(t, 3, true)
	const name = "c17-hdrs"
	owner, _, neither := byRole(t, nodes, name)

	if code, raw := do(t, http.MethodPut, owner.url+"/v1/designs/"+name, LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("load: %d %s", code, raw)
	}

	// An edit with an unknown op through the proxy: the owner's 400 error
	// envelope and headers must arrive exactly once each.
	req, _ := http.NewRequest(http.MethodPost, neither.url+"/v1/designs/"+name+"/edits",
		strings.NewReader(`{"op":"resize","gate":"no-such-gate","strength":4}`))
	req.Header.Set("X-Request-ID", "hdr-probe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != codeEditRejected {
		t.Fatalf("proxied bad edit: %d %+v", resp.StatusCode, eb)
	}
	if got := resp.Header.Values("X-Request-ID"); len(got) != 1 || got[0] != "hdr-probe" {
		t.Fatalf("proxied error X-Request-ID %v, want exactly [hdr-probe]", got)
	}
	if got := resp.Header.Values("Content-Type"); len(got) != 1 {
		t.Fatalf("proxied Content-Type duplicated: %v", got)
	}
}
