package server

import (
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestUnknownRouteCardinality probes many distinct unregistered URLs and
// checks they all collapse into the single "other" series — the scrape must
// not grow a label per probed path.
func TestUnknownRouteCardinality(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 50; i++ {
		code, raw := do(t, http.MethodGet, fmt.Sprintf("%s/no/such/route/%d", ts.URL, i), nil, nil)
		if code != http.StatusNotFound {
			t.Fatalf("unknown route: status %d: %s", code, raw)
		}
		if !strings.Contains(raw, "no such route") {
			t.Fatalf("unknown route body = %q, want JSON 404", raw)
		}
	}
	code, raw := do(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if strings.Contains(raw, "/no/such/route") {
		t.Fatalf("metrics leaked an unbounded route label:\n%s", raw)
	}
	m := regexp.MustCompile(`timingd_requests_total\{route="other"\} (\d+)`).FindStringSubmatch(raw)
	if m == nil {
		t.Fatalf("metrics missing the \"other\" series:\n%s", raw)
	}
	if n, _ := strconv.Atoi(m[1]); n < 50 {
		t.Fatalf("other series = %d, want >= 50", n)
	}
}

// TestRequestLatencyQuantiles drives one route under concurrency (the race
// detector watches the histogram internals) and checks the scraped summary
// is well-formed: count covers every request, quantiles are positive and
// ordered.
func TestRequestLatencyQuantiles(t *testing.T) {
	_, ts := newTestServer(t)
	const workers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := http.Get(ts.URL + "/healthz")
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	code, raw := do(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	count := extractMetric(t, raw, `timingd_request_seconds_count\{route="GET /healthz"\} (\S+)`)
	if count < workers*per {
		t.Fatalf("healthz latency count = %g, want >= %d", count, workers*per)
	}
	p50 := extractMetric(t, raw, `timingd_request_seconds\{route="GET /healthz",quantile="0.5"\} (\S+)`)
	p99 := extractMetric(t, raw, `timingd_request_seconds\{route="GET /healthz",quantile="0.99"\} (\S+)`)
	if !(p50 > 0 && p99 >= p50) {
		t.Fatalf("quantiles not ordered: p50=%g p99=%g", p50, p99)
	}
	if p99 > 10 {
		t.Fatalf("p99 of /healthz = %gs, implausibly slow", p99)
	}
}

func extractMetric(t *testing.T, raw, pattern string) float64 {
	t.Helper()
	m := regexp.MustCompile(pattern).FindStringSubmatch(raw)
	if m == nil {
		t.Fatalf("metrics output missing %q:\n%s", pattern, raw)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", m[1], err)
	}
	return v
}
