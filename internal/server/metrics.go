package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// metrics is the hand-rolled Prometheus-text instrumentation of the server:
// per-route request counters plus, at scrape time, the per-design
// re-propagation counters read straight from the engines. No client library
// — the text exposition format is a few lines of fmt.
type metrics struct {
	mu       sync.Mutex
	requests map[string]uint64
}

func newMetrics() *metrics {
	return &metrics{requests: map[string]uint64{}}
}

func (m *metrics) hit(route string) {
	m.mu.Lock()
	m.requests[route]++
	m.mu.Unlock()
}

// write renders the exposition text. Designs are passed in by the server so
// the scrape sees live engine counters.
func (m *metrics) write(w io.Writer, designs map[string]*design) {
	m.mu.Lock()
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	counts := make([]uint64, len(routes))
	for i, r := range routes {
		counts[i] = m.requests[r]
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP timingd_requests_total HTTP requests served, by route.")
	fmt.Fprintln(w, "# TYPE timingd_requests_total counter")
	for i, r := range routes {
		fmt.Fprintf(w, "timingd_requests_total{route=%q} %d\n", r, counts[i])
	}

	names := make([]string, 0, len(designs))
	for n := range designs {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP timingd_designs Designs currently loaded.\n# TYPE timingd_designs gauge\ntimingd_designs %d\n", len(names))

	gauge := func(metric, help string, val func(d *design) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", metric, help, metric)
		for _, n := range names {
			fmt.Fprintf(w, "%s{design=%q} %g\n", metric, n, val(designs[n]))
		}
	}
	counter := func(metric, help string, val func(d *design) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", metric, help, metric)
		for _, n := range names {
			fmt.Fprintf(w, "%s{design=%q} %d\n", metric, n, val(designs[n]))
		}
	}
	counter("timingd_design_edits_total", "ECO edits applied.",
		func(d *design) uint64 { return d.eng.Stats().Edits })
	counter("timingd_design_gates_reevaluated_total", "Gate evaluations performed by incremental re-propagation.",
		func(d *design) uint64 { return d.eng.Stats().GatesReevaluated })
	counter("timingd_design_gates_cut_total", "Re-evaluations whose cone terminated early.",
		func(d *design) uint64 { return d.eng.Stats().GatesCut })
	counter("timingd_design_endpoints_recomputed_total", "Endpoint entries re-transported.",
		func(d *design) uint64 { return d.eng.Stats().EndpointsRecomputed })
	counter("timingd_design_full_passes_total", "Full propagation passes (load and rebuild).",
		func(d *design) uint64 { return d.eng.Stats().FullPasses })
	gauge("timingd_design_gates", "Design size in gates.",
		func(d *design) float64 { return float64(d.eng.GateCount()) })
	gauge("timingd_design_cache_hit_ratio", "Fraction of gate evaluations avoided vs one full pass per edit.",
		func(d *design) float64 { return d.eng.Stats().CacheHitRatio() })
	gauge("timingd_design_version", "Snapshot version (edit sequence number).",
		func(d *design) float64 { return float64(d.eng.Snapshot().Version()) })
}
