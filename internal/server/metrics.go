package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// routePatterns is the fixed per-route label set of the request metrics —
// exactly the patterns New registers. Anything else (an unknown path, a
// probing client, a typo) lands in the shared "other" series, so the scrape
// cardinality is bounded no matter what URLs are thrown at the server.
var routePatterns = []string{
	"GET /healthz",
	"GET /v1/healthz",
	"GET /v1/readyz",
	"GET /metrics",
	"GET /v1/debug/slow",
	"GET /v1/designs",
	"PUT /v1/designs/{name}",
	"DELETE /v1/designs/{name}",
	"GET /v1/designs/{name}",
	"GET /v1/designs/{name}/gates",
	"GET /v1/designs/{name}/paths",
	"GET /v1/designs/{name}/slacks",
	"POST /v1/designs/{name}/edits",
	"POST /v1/designs/{name}/batch",
	// Deprecated pre-v1 shims keep their own series so a dashboard can watch
	// legacy traffic drain.
	"GET /designs",
	"PUT /designs/{name}",
	"DELETE /designs/{name}",
	"GET /designs/{name}",
	"GET /designs/{name}/gates",
	"GET /designs/{name}/paths",
	"GET /designs/{name}/slacks",
	"POST /designs/{name}/edits",
	// Cluster mode: replication ingest, introspection, and the forwarding
	// pseudo-routes (a forwarded request is counted by method, not by the
	// owner-side pattern it resolves to).
	"POST /v1/internal/replicate",
	"POST /v1/internal/edits",
	"POST /v1/internal/lease/claim",
	"POST /v1/internal/lease/adopt",
	"POST /v1/internal/members",
	"GET /v1/internal/health",
	"GET /v1/cluster",
	"GET /v1/cluster/route",
	"GET /v1/cluster/members",
	"POST /v1/cluster/members",
	"DELETE /v1/cluster/members/{peer...}",
	"GET /v1/cluster/designs/{name}",
	"forward GET",
	"forward PUT",
	"forward POST",
	"forward DELETE",
}

// metrics instruments the server on the process-wide obs registry:
// bounded-cardinality per-route request counters and latency histograms.
// The scrape renders the whole registry — so solver, characterisation and
// incremental-STA metrics from the rest of the pipeline appear alongside —
// followed by the per-design section read live from the engines.
type metrics struct {
	requests *obs.CounterVec
	latency  *obs.HistogramVec

	// Cluster-originated internal traffic (heartbeats, snapshot replication —
	// anything carrying cluster.InternalHeader) counts here instead, so the
	// per-route user-request series are not polluted by machine chatter.
	clusterRequests *obs.CounterVec
	clusterLatency  *obs.HistogramVec
}

// Durability and overload counters, on the process-wide registry like the
// wal_* metrics they complement.
var (
	mAdmissionRejected = obs.Default().Counter("timingd_admission_rejected_total",
		"Requests rejected by the concurrent-query admission limiter or a full edit queue.")
	mRecoveryReplayed = obs.Default().Counter("timingd_recovery_replayed_edits_total",
		"WAL edits replayed into recovered designs at startup.")
	mSnapshotsPersisted = obs.Default().Counter("timingd_snapshots_persisted_total",
		"Design snapshots persisted (load, periodic checkpoint, graceful drain).")
	mPersistErrors = obs.Default().Counter("timingd_persist_errors_total",
		"Failed snapshot persists (checkpoint or drain).")
	hSnapshotSeconds = obs.Default().Histogram("timingd_snapshot_seconds",
		"Wall time of one design snapshot persist.")
)

func newMetrics() *metrics {
	return &metrics{
		requests: obs.Default().CounterVec("timingd_requests_total",
			"HTTP requests served, by route.", "route", routePatterns...),
		latency: obs.Default().HistogramVec("timingd_request_seconds",
			"HTTP request latency in seconds, by route.", "route", routePatterns...),
		clusterRequests: obs.Default().CounterVec("timingd_cluster_requests_total",
			"Cluster-internal HTTP requests served (heartbeats, replication), by route.", "route", routePatterns...),
		clusterLatency: obs.Default().HistogramVec("timingd_cluster_request_seconds",
			"Cluster-internal HTTP request latency in seconds, by route.", "route", routePatterns...),
	}
}

// observe records one served request. route may be any string; values
// outside routePatterns aggregate under "other". Requests marked
// cluster-internal count in the cluster series instead of the user ones.
func (m *metrics) observe(r *http.Request, route string, t0 time.Time) {
	if r != nil && r.Header.Get(cluster.InternalHeader) != "" {
		m.clusterRequests.With(route).Inc()
		m.clusterLatency.With(route).ObserveSince(t0)
		return
	}
	m.requests.With(route).Inc()
	m.latency.With(route).ObserveSince(t0)
}

// write renders the exposition text: the process-wide registry first, then
// the per-design engine counters, passed in by the server so the scrape sees
// live values.
func (m *metrics) write(w io.Writer, designs map[string]*design) {
	obs.Default().WritePrometheus(w)

	names := make([]string, 0, len(designs))
	for n := range designs {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP timingd_designs Designs currently loaded.\n# TYPE timingd_designs gauge\ntimingd_designs %d\n", len(names))

	gauge := func(metric, help string, val func(d *design) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", metric, help, metric)
		for _, n := range names {
			fmt.Fprintf(w, "%s{design=%q} %g\n", metric, n, val(designs[n]))
		}
	}
	counter := func(metric, help string, val func(d *design) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", metric, help, metric)
		for _, n := range names {
			fmt.Fprintf(w, "%s{design=%q} %d\n", metric, n, val(designs[n]))
		}
	}
	counter("timingd_design_edits_total", "ECO edits applied.",
		func(d *design) uint64 { return d.eng.Stats().Edits })
	counter("timingd_design_gates_reevaluated_total", "Gate evaluations performed by incremental re-propagation.",
		func(d *design) uint64 { return d.eng.Stats().GatesReevaluated })
	counter("timingd_design_gates_cut_total", "Re-evaluations whose cone terminated early.",
		func(d *design) uint64 { return d.eng.Stats().GatesCut })
	counter("timingd_design_endpoints_recomputed_total", "Endpoint entries re-transported.",
		func(d *design) uint64 { return d.eng.Stats().EndpointsRecomputed })
	counter("timingd_design_full_passes_total", "Full propagation passes (load and rebuild).",
		func(d *design) uint64 { return d.eng.Stats().FullPasses })
	gauge("timingd_design_gates", "Design size in gates.",
		func(d *design) float64 { return float64(d.eng.GateCount()) })
	gauge("timingd_design_cache_hit_ratio", "Fraction of gate evaluations avoided vs one full pass per edit.",
		func(d *design) float64 { return d.eng.Stats().CacheHitRatio() })
	gauge("timingd_design_version", "Snapshot version (edit sequence number).",
		func(d *design) float64 { return float64(d.eng.Snapshot().Version()) })
}
