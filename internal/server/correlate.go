package server

import (
	"encoding/hex"
	"math/rand/v2"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Correlation headers: every request gets a request ID (client-supplied or
// minted) echoed on every response — success and every error envelope alike —
// and optionally a W3C traceparent tying the request into a distributed
// trace. Both ride on r.Header too, so forward hops and 307 redirects carry
// them to the next node unchanged.
const (
	headerRequestID   = "X-Request-ID"
	headerTraceparent = "traceparent"
)

// newRequestID mints a 32-hex-digit request ID.
func newRequestID() string {
	var b [16]byte
	for i := 0; i < 16; i += 8 {
		v := rand.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (56 - 8*j))
		}
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts client-supplied request IDs of 1–128 bytes drawn
// from a log-safe alphabet; anything else (empty, oversized, control bytes,
// header-splitting characters) is replaced with a minted ID.
func validRequestID(s string) bool {
	if len(s) == 0 || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':' || c == '@':
		default:
			return false
		}
	}
	return true
}

// statusWriter captures the response status for the access log, slow log and
// request span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// correlate is the outermost middleware: request-ID correlation, distributed
// trace propagation with head-based sampling, per-request structured logging,
// and the slow-request log. It runs before the cluster router so forwarded
// requests carry their correlation headers to the next node.
func (s *Server) correlate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()

		rid := r.Header.Get(headerRequestID)
		if !validRequestID(rid) {
			rid = newRequestID()
		}
		r.Header.Set(headerRequestID, rid) // propagate on forwards
		w.Header().Set(headerRequestID, rid)

		// Trace identity: an incoming traceparent wins (its sampled flag is
		// the upstream head-sampling decision); otherwise mint one per the
		// local sampling rate. No incoming header and a zero rate leaves the
		// request traceless — StartSpan then behaves exactly as before this
		// middleware existed.
		ctx := r.Context()
		tc, haveTrace := obs.TraceContext{}, false
		if tp := r.Header.Get(headerTraceparent); tp != "" {
			if parsed, err := obs.ParseTraceparent(tp); err == nil {
				tc, haveTrace = parsed, true
			}
		}
		if !haveTrace && s.sampleRate > 0 {
			tc, haveTrace = obs.NewTraceContext(rand.Float64() < s.sampleRate), true
		}
		var span *obs.Span
		if haveTrace {
			ctx = obs.ContextWithTrace(ctx, tc)
			ctx, span = s.tracer.StartSpan(ctx, "http_request",
				obs.A("method", r.Method), obs.A("path", r.URL.Path), obs.A("request_id", rid))
		}
		// Propagate the current trace position: the request span when one was
		// recorded, the incoming context otherwise (tracer disabled locally but
		// a downstream node may record). Unsampled contexts propagate too —
		// flags 00 tells the next hop not to re-sample.
		if cur, ok := obs.TraceFromContext(ctx); ok && cur.Propagatable() {
			tp := cur.Traceparent()
			r.Header.Set(headerTraceparent, tp)
			w.Header().Set(headerTraceparent, tp)
		}

		l := s.log().With("request_id", rid)
		if haveTrace && tc.Valid() {
			l = l.With("trace_id", tc.TraceIDString())
		}
		ctx = obs.ContextWithLogger(ctx, l)

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		dur := time.Since(t0)
		span.SetAttr("status", status)
		span.End()

		// Cluster-originated internal calls (heartbeats, replication) log at
		// debug so user-facing request logs stay greppable.
		msg, attrs := "request", []any{
			"method", r.Method, "path", r.URL.Path,
			"status", status, "dur_ms", float64(dur) / float64(time.Millisecond),
		}
		if r.Header.Get(cluster.InternalHeader) != "" {
			l.Debug(msg, attrs...)
		} else {
			l.Info(msg, attrs...)
			s.recordSlow(r, tc, rid, status, dur)
		}
	})
}

// recordSlow feeds the bounded slow-request log; design name and corner
// count are resolved only when the entry would actually be kept.
func (s *Server) recordSlow(r *http.Request, tc obs.TraceContext, rid string, status int, dur time.Duration) {
	if s.slow == nil || !s.slow.wouldRecord(dur) {
		return
	}
	e := slowEntry{
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		Method:     r.Method,
		Path:       r.URL.Path,
		Status:     status,
		DurationMS: float64(dur) / float64(time.Millisecond),
		RequestID:  rid,
	}
	if tc.Valid() {
		e.TraceID = tc.TraceIDString()
	}
	if name, ok := designPathName(r.URL.Path); ok {
		e.Design = name
		if d, loaded := s.design(name); loaded && d.eng != nil {
			e.Corners = len(d.eng.Snapshot().Corners())
		} else if rep := s.replica(name); rep != nil {
			if eng, _, _ := rep.view(); eng != nil {
				e.Corners = len(eng.Snapshot().Corners())
			}
		}
	}
	s.slow.record(e, dur)
}
