package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/libsynth"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// getWithHeaders is do() plus response headers, for tests that assert on
// Retry-After.
func getWithHeaders(t *testing.T, url string, out any) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestOverloadedSetsRetryAfter: a 503 from the admission limiter carries a
// Retry-After header so well-behaved clients back off instead of hammering.
func TestOverloadedSetsRetryAfter(t *testing.T) {
	s := New(libsynth.File(), WithAdmission(2, 10*time.Millisecond))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	loadC17(t, ts)

	if !s.adm.acquire(context.Background(), 2) {
		t.Fatal("initial acquire failed")
	}
	defer s.adm.release(2)

	var eb errorBody
	code, hdr := getWithHeaders(t, ts.URL+"/v1/designs/c17", &eb)
	if code != http.StatusServiceUnavailable || eb.Error.Code != codeOverloaded {
		t.Fatalf("saturated query: %d %+v", code, eb)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", hdr.Get("Retry-After"))
	}
}

// TestNotReadySetsRetryAfter: the not_ready 503 (readyz and gated design
// routes alike) tells clients when to come back.
func TestNotReadySetsRetryAfter(t *testing.T) {
	fs := faultfs.New()
	s := New(libsynth.File(), WithStore(NewStore(fs, "data", StoreConfig{})))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	for _, path := range []string{"/v1/readyz", "/v1/designs"} {
		code, hdr := getWithHeaders(t, ts.URL+path, nil)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s before recovery = %d, want 503", path, code)
		}
		if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
			t.Fatalf("%s Retry-After = %q, want integer seconds >= 1", path, hdr.Get("Retry-After"))
		}
	}
}

// TestReadyzReportsRecoveryProgress: mid-recovery, /v1/readyz's 503 body
// carries the design totals and the design currently replaying, so operators
// can watch a slow startup move instead of staring at an opaque 503.
func TestReadyzReportsRecoveryProgress(t *testing.T) {
	fs := faultfs.New()
	st := NewStore(fs, "data", StoreConfig{Policy: wal.SyncAlways})
	s := New(libsynth.File(), WithStore(st))
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	loadC17(t, ts)
	if code, raw := do(t, http.MethodPut, ts.URL+"/v1/designs/second", LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("load second: %d %s", code, raw)
	}
	ts.Close()
	s.Close() // persists both snapshots

	s2 := New(libsynth.File(), WithStore(NewStore(fs.Image(), "data", StoreConfig{Policy: wal.SyncAlways})))
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })

	var mid []readyStatus
	s2.recoverHook = func(name string) {
		var rs readyStatus
		code, _ := getWithHeaders(t, ts2.URL+"/v1/readyz", &rs)
		if code != http.StatusServiceUnavailable {
			t.Errorf("readyz mid-recovery = %d, want 503", code)
		}
		mid = append(mid, rs)
	}
	if err := s2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}

	if len(mid) != 2 {
		t.Fatalf("recovery hook fired %d times, want 2", len(mid))
	}
	for i, rs := range mid {
		if rs.Status != "recovering" || rs.DesignsTotal != 2 {
			t.Fatalf("progress %d = %+v, want status=recovering total=2", i, rs)
		}
		if rs.DesignsRecovered != i {
			t.Fatalf("progress %d reports %d recovered, want %d", i, rs.DesignsRecovered, i)
		}
		if rs.Current == "" {
			t.Fatalf("progress %d has empty current design", i)
		}
		if rs.Error.Code != codeNotReady {
			t.Fatalf("progress %d error code = %q, want %q", i, rs.Error.Code, codeNotReady)
		}
	}
	if code, _ := getWithHeaders(t, ts2.URL+"/v1/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d, want 200", code)
	}
}
