package server

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// ghostClaim injects a lease claim from a claimant that will never finish
// its takeover: high basis (so any copy grants) at the given epoch. The
// target node's fencing epoch rises to epoch without any owner adopting it.
func ghostClaim(t *testing.T, target *clusterNode, name string, epoch uint64) {
	t.Helper()
	code, raw := doInternal(t, target.url, "/v1/internal/lease/claim", "lease-claim",
		leaseClaimRequest{
			Design: name, Epoch: epoch, From: "http://ghost.invalid:1",
			BasisEpoch: 99, BasisSeq: 99,
		})
	if code != http.StatusOK || !strings.Contains(raw, `"granted":true`) {
		t.Fatalf("ghost claim at %d = %d: %s", epoch, code, raw)
	}
}

// TestClusterPromiseFencesEditsAndRecovers is the acked-write-loss
// regression at the HTTP level: once a replica has promised a higher epoch
// to a claimant, the old owner's edit stream is refused with stale_epoch —
// the client's write fails visibly instead of being acknowledged and later
// erased by the claimant's snapshot. And because the claimant never
// completes its takeover, the fenced owner must recover on its own: it is
// not demoted (no live higher-epoch owner exists), so its re-claim path
// wins an epoch above the ghost's promise and writes resume.
func TestClusterPromiseFencesEditsAndRecovers(t *testing.T) {
	const name = "c17-promise-fence"
	nodes := newTestClusterWith(t, 3, true, func(int) []Option {
		return []Option{WithPromotionInterval(50 * time.Millisecond)}
	})
	owner, replica, neither := byRole(t, nodes, name)

	if code, raw := do(t, http.MethodPut, neither.url+"/v1/designs/"+name,
		LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("PUT = %d: %s", code, raw)
	}
	gates := clusterGates(t, neither.url, name)
	if code, raw := do(t, http.MethodPost, neither.url+"/v1/designs/"+name+"/edits",
		EditRequest{Op: "resize", Gate: gates[0].Name, Strength: 8}, nil); code != http.StatusOK {
		t.Fatalf("edit = %d: %s", code, raw)
	}
	waitUntil(t, "replica to ack the edit", func() bool {
		d, ok := owner.s.design(name)
		if !ok {
			return false
		}
		rep := replica.s.replica(name)
		if rep == nil {
			return false
		}
		_, seq, _ := rep.view()
		return seq == d.seq.Load()
	})

	ghostClaim(t, replica, name, 7)
	code, raw := do(t, http.MethodPost, owner.url+"/v1/designs/"+name+"/edits",
		EditRequest{Op: "resize", Gate: gates[1].Name, Strength: 4}, nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(raw, codeStaleEpoch) {
		t.Fatalf("edit under a promised higher epoch = %d (%s), want 503 stale_epoch", code, raw)
	}

	waitUntil(t, "fenced owner to re-claim above the ghost's promise", func() bool {
		d, ok := owner.s.design(name)
		return ok && !d.fenced.Load() && d.epoch.Load() > 7
	})
	waitUntil(t, "writes to resume on the re-promoted owner", func() bool {
		code, _ := do(t, http.MethodPost, neither.url+"/v1/designs/"+name+"/edits",
			EditRequest{Op: "resize", Gate: gates[2].Name, Strength: 8}, nil)
		return code == http.StatusOK
	})
}

// TestClusterDeletedNameReloadsOverStaleReplica covers the missed-tombstone
// debris path: a replica whose fencing epoch was raised past the owner's
// delete tombstone keeps its copy of a deleted design, and a later PUT of
// the same name — whose fresh-load claim that replica refuses as "more
// caught-up" — must tombstone the provably stale copy and win, not 503
// forever.
func TestClusterDeletedNameReloadsOverStaleReplica(t *testing.T) {
	const name = "c17-stale-replica"
	nodes := newTestClusterWith(t, 3, true, func(int) []Option {
		return []Option{WithPromotionInterval(50 * time.Millisecond)}
	})
	owner, replica, neither := byRole(t, nodes, name)

	if code, raw := do(t, http.MethodPut, neither.url+"/v1/designs/"+name,
		LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("PUT = %d: %s", code, raw)
	}
	waitUntil(t, "replica to hold a shipped copy", func() bool {
		return replica.s.replica(name) != nil
	})

	// The ghost's promise raises the replica's fencing epoch above anything
	// the deleting owner will tombstone at, so the DELETE broadcast cannot
	// reach this copy.
	ghostClaim(t, replica, name, 4)
	if code, raw := do(t, http.MethodDelete, owner.url+"/v1/designs/"+name, nil, nil); code != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", code, raw)
	}
	time.Sleep(150 * time.Millisecond) // let the tombstone broadcast land and be refused
	if replica.s.replica(name) == nil {
		t.Fatal("test premise broken: the stale replica accepted the low-epoch tombstone")
	}

	// Reloading the name sweeps the debris inside the claim retry loop.
	if code, raw := do(t, http.MethodPut, neither.url+"/v1/designs/"+name,
		LoadRequest{Bench: c17Bench}, nil); code != http.StatusCreated {
		t.Fatalf("reload over stale replica = %d: %s", code, raw)
	}
	d, ok := owner.s.design(name)
	if !ok {
		t.Fatal("reloaded design missing on the ring owner")
	}
	if epoch := d.epoch.Load(); epoch <= 4 {
		t.Fatalf("reloaded design won epoch %d, want above the ghost's promise 4", epoch)
	}
	waitUntil(t, "stale replica to be rebased onto the new incarnation", func() bool {
		rep := replica.s.replica(name)
		if rep == nil {
			return false
		}
		_, _, epoch := rep.view()
		return epoch == d.epoch.Load()
	})
}
