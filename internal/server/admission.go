package server

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// admission is a weighted FIFO counting semaphore bounding the queries
// evaluated concurrently across the whole server. A single query weighs 1; a
// batch weighs its query count (clamped to the capacity so an over-sized
// batch can still run — alone). Waiters queue in arrival order under a
// deadline; a timeout or cancelled request gives up its place and the
// request is rejected with 503 "overloaded" instead of stacking up latency
// for everyone behind it.
type admission struct {
	mu      sync.Mutex
	cap     int64
	avail   int64
	waiters list.List // of *admWaiter, FIFO
	maxWait time.Duration
}

type admWaiter struct {
	n     int64
	ready chan struct{} // closed when the tokens were granted
}

// newAdmission builds a limiter of capacity max (<=0 disables limiting) with
// queue timeout maxWait.
func newAdmission(max int64, maxWait time.Duration) *admission {
	if max <= 0 {
		return nil
	}
	return &admission{cap: max, avail: max, maxWait: maxWait}
}

// acquire takes n tokens (clamped to capacity), waiting at most the queue
// timeout (and no longer than ctx). It returns false when the request should
// be rejected as overloaded.
func (a *admission) acquire(ctx context.Context, n int64) bool {
	if a == nil {
		return true
	}
	if n < 1 {
		n = 1
	}
	if n > a.cap {
		n = a.cap
	}
	a.mu.Lock()
	if a.avail >= n && a.waiters.Len() == 0 {
		a.avail -= n
		a.mu.Unlock()
		return true
	}
	w := &admWaiter{n: n, ready: make(chan struct{})}
	elem := a.waiters.PushBack(w)
	a.mu.Unlock()

	if a.maxWait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.maxWait)
		defer cancel()
	}
	select {
	case <-w.ready:
		return true
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			// Raced with a grant: the tokens are ours; keep them (the caller
			// observes success and will release normally).
			a.mu.Unlock()
			return true
		default:
			a.waiters.Remove(elem)
			// Our departure may unblock smaller waiters behind us.
			a.grantLocked()
			a.mu.Unlock()
			return false
		}
	}
}

// release returns n tokens (same clamping as acquire).
func (a *admission) release(n int64) {
	if a == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	if n > a.cap {
		n = a.cap
	}
	a.mu.Lock()
	a.avail += n
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked hands tokens to queued waiters in FIFO order. The head waiter
// blocks the queue until it fits — deliberate: skipping ahead would starve
// large batches forever under a stream of single queries.
func (a *admission) grantLocked() {
	for e := a.waiters.Front(); e != nil; e = a.waiters.Front() {
		w := e.Value.(*admWaiter)
		if a.avail < w.n {
			return
		}
		a.avail -= w.n
		a.waiters.Remove(e)
		close(w.ready)
	}
}
