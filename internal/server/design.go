package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/incsta"
	"repro/internal/wal"
)

// ErrDesignClosed is returned for edits submitted to a design that has been
// deleted or a server that is shutting down.
var ErrDesignClosed = errors.New("server: design closed")

// ErrOverloaded is returned when a design's bounded edit queue is full: the
// writer cannot keep up and the edit is rejected immediately (503
// "overloaded") instead of piling up unbounded memory and latency.
var ErrOverloaded = errors.New("server: edit queue full")

// defaultEditQueueDepth bounds each design's pending-edit buffer.
const defaultEditQueueDepth = 64

// design pairs an incremental engine with its serialized edit queue and
// (when the server has a Store) its write-ahead log. The engine itself is
// safe for concurrent edits, but the queue gives the HTTP layer one writer
// per design, edits applied strictly in arrival order, while read queries go
// straight to the engine's lock-free snapshots.
//
// Durability discipline (WAL-first): the writer appends the edit record to
// the log — durable per the fsync policy — before applying it to the engine,
// and acknowledges only after both. Rejected edits stay in the log; replay
// re-rejects them identically, so recovery is a pure replay of the record
// prefix that survived.
type design struct {
	name  string
	eng   *incsta.Engine
	log   *wal.Log // nil = in-memory only
	store *Store   // nil = in-memory only
	reqs  chan editReq
	snaps chan chan error
	quit  chan struct{}
	done  chan struct{}
}

type editReq struct {
	ed    incsta.Edit
	reply chan editResult
}

type editResult struct {
	rep *incsta.Report
	err error
}

// newDesign starts the single-writer loop. log and store are both nil for an
// in-memory design; with a store, the caller has already persisted the
// initial snapshot and opened the log.
func newDesign(name string, eng *incsta.Engine, log *wal.Log, store *Store, queueDepth int) *design {
	if queueDepth <= 0 {
		queueDepth = defaultEditQueueDepth
	}
	d := &design{
		name:  name,
		eng:   eng,
		log:   log,
		store: store,
		reqs:  make(chan editReq, queueDepth),
		snaps: make(chan chan error, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go d.serve()
	if store != nil && store.cfg.SnapshotInterval > 0 {
		go d.snapshotLoop(store.cfg.SnapshotInterval)
	}
	return d
}

// serve is the design's single-writer loop. On quit it drains edits already
// queued (their HTTP handlers are waiting on replies), persists a final
// snapshot, and exits.
func (d *design) serve() {
	defer close(d.done)
	for {
		select {
		case <-d.quit:
			d.drainAndPersist()
			return
		case req := <-d.reqs:
			req.reply <- d.applyOne(req.ed)
		case errc := <-d.snaps:
			errc <- d.persist()
		}
	}
}

// drainAndPersist finishes queued edits and folds the final state into a
// durable snapshot — the graceful-shutdown half of the durability story.
func (d *design) drainAndPersist() {
	for {
		select {
		case req := <-d.reqs:
			req.reply <- d.applyOne(req.ed)
		default:
			if d.store != nil {
				if err := d.persist(); err != nil {
					mPersistErrors.Inc()
				}
			}
			return
		}
	}
}

// applyOne logs (durably) then applies one edit.
func (d *design) applyOne(ed incsta.Edit) editResult {
	if d.log != nil {
		payload, err := json.Marshal(ed)
		if err != nil {
			return editResult{err: fmt.Errorf("server: encode edit: %w", err)}
		}
		if _, err := d.log.Append(payload); err != nil {
			// The edit never reached stable storage: refuse to apply it, or an
			// acknowledged state transition could vanish on restart.
			return editResult{err: fmt.Errorf("server: wal append: %w", err)}
		}
	}
	rep, err := d.eng.ApplyEdit(ed)
	return editResult{rep: rep, err: err}
}

// persist folds the current engine state into a durable snapshot and
// truncates the replayed log. Runs on the writer goroutine, so the state and
// the WAL high-water mark are coherent by construction.
func (d *design) persist() error {
	if d.store == nil {
		return nil
	}
	var seq uint64
	if d.log != nil {
		seq = d.log.LastSeq()
	}
	if err := d.store.saveSnapshot(snapshotOf(d.name, d.eng, seq)); err != nil {
		return err
	}
	if d.log != nil {
		return d.log.TruncateAll()
	}
	return nil
}

// snapshotLoop periodically checkpoints the design so the WAL stays short
// and recovery fast.
func (d *design) snapshotLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.quit:
			return
		case <-t.C:
			if err := d.checkpoint(); err != nil && !errors.Is(err, ErrDesignClosed) {
				mPersistErrors.Inc()
			}
		}
	}
}

// checkpoint asks the writer loop to persist a snapshot and waits for it.
func (d *design) checkpoint() error {
	errc := make(chan error, 1)
	select {
	case d.snaps <- errc:
	case <-d.quit:
		return ErrDesignClosed
	}
	select {
	case err := <-errc:
		return err
	case <-d.done:
		return ErrDesignClosed
	}
}

// submit queues one edit and waits for its result. A full queue rejects
// immediately with ErrOverloaded; cancellation of ctx abandons the wait (the
// edit may still apply); a closed design returns ErrDesignClosed.
func (d *design) submit(ctx context.Context, ed incsta.Edit) (*incsta.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-d.quit:
		return nil, ErrDesignClosed
	default:
	}
	req := editReq{ed: ed, reply: make(chan editResult, 1)}
	select {
	case d.reqs <- req:
	default:
		return nil, ErrOverloaded
	}
	select {
	case res := <-req.reply:
		return res.rep, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-d.done:
		return nil, ErrDesignClosed
	}
}

// close stops the writer loop (which persists a final snapshot), waits for
// it to exit, and closes the log.
func (d *design) close() {
	close(d.quit)
	<-d.done
	if d.log != nil {
		d.log.Close()
	}
}
