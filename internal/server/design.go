package server

import (
	"context"
	"errors"

	"repro/internal/incsta"
)

// ErrDesignClosed is returned for edits submitted to a design that has been
// deleted or a server that is shutting down.
var ErrDesignClosed = errors.New("server: design closed")

// design pairs an incremental engine with its serialized edit queue. The
// engine itself is safe for concurrent edits, but the queue gives the HTTP
// layer what the ISSUE asks for: one writer per design, edits applied
// strictly in arrival order, while read queries go straight to the engine's
// lock-free snapshots.
type design struct {
	name string
	eng  *incsta.Engine
	reqs chan editReq
	quit chan struct{}
	done chan struct{}
}

type editReq struct {
	apply func() (*incsta.Report, error)
	reply chan editResult
}

type editResult struct {
	rep *incsta.Report
	err error
}

func newDesign(name string, eng *incsta.Engine) *design {
	d := &design{
		name: name,
		eng:  eng,
		reqs: make(chan editReq),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go d.serve()
	return d
}

// serve is the design's single-writer loop.
func (d *design) serve() {
	defer close(d.done)
	for {
		select {
		case <-d.quit:
			return
		case req := <-d.reqs:
			rep, err := req.apply()
			req.reply <- editResult{rep: rep, err: err}
		}
	}
}

// submit queues one edit and waits for its result. Cancellation of ctx
// abandons the wait (the edit may still apply); a closed design returns
// ErrDesignClosed.
func (d *design) submit(ctx context.Context, apply func() (*incsta.Report, error)) (*incsta.Report, error) {
	req := editReq{apply: apply, reply: make(chan editResult, 1)}
	select {
	case d.reqs <- req:
	case <-d.quit:
		return nil, ErrDesignClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case res := <-req.reply:
		return res.rep, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// close stops the writer loop and waits for it to exit.
func (d *design) close() {
	close(d.quit)
	<-d.done
}
