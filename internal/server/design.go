package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/incsta"
	"repro/internal/wal"
)

// ErrDesignClosed is returned for edits submitted to a design that has been
// deleted or a server that is shutting down.
var ErrDesignClosed = errors.New("server: design closed")

// ErrOverloaded is returned when a design's bounded edit queue is full: the
// writer cannot keep up and the edit is rejected immediately (503
// "overloaded") instead of piling up unbounded memory and latency.
var ErrOverloaded = errors.New("server: edit queue full")

// defaultEditQueueDepth bounds each design's pending-edit buffer.
const defaultEditQueueDepth = 64

// design pairs an incremental engine with its serialized edit queue and
// (when the server has a Store) its write-ahead log. The engine itself is
// safe for concurrent edits, but the queue gives the HTTP layer one writer
// per design, edits applied strictly in arrival order, while read queries go
// straight to the engine's lock-free snapshots.
//
// Durability discipline (WAL-first): the writer appends the edit record to
// the log — durable per the fsync policy — before applying it to the engine,
// and acknowledges only after both. Rejected edits stay in the log; replay
// re-rejects them identically, so recovery is a pure replay of the record
// prefix that survived.
type design struct {
	name  string
	eng   *incsta.Engine
	log   *wal.Log // nil = in-memory only
	store *Store   // nil = in-memory only
	reqs  chan editReq
	snaps chan chan error
	caps  chan chan *designSnapshot
	quit  chan struct{}
	done  chan struct{}

	// Cluster-mode state. seq counts successfully applied edits — the
	// replication sequence replicas ack and the owner persists as EditSeq;
	// epoch is the ownership-lease fencing token the design serves under;
	// fenced flips once a higher epoch is observed (a fenced design stops
	// accepting edits and is demoted to a replica). ship, set before the
	// design is published, synchronously replicates one applied edit; its
	// error fails the edit's acknowledgement.
	seq      atomic.Uint64
	epoch    atomic.Uint64
	fenced   atomic.Bool
	demoting atomic.Bool // guards the once-only demotion of a fenced owner
	// fateMu serializes ownership-fate transitions (fenceOwned vs
	// promoteOwned): a stale fencing decision racing a re-promotion could
	// otherwise tear down the copy a just-announced lease points at.
	fateMu sync.Mutex
	shp    *shipState // per-peer replication progress (cluster mode)
	ship   func(seq uint64, payload []byte) error
}

type editReq struct {
	ed    incsta.Edit
	reply chan editResult
}

type editResult struct {
	rep *incsta.Report
	err error
}

// newDesign starts the single-writer loop. log and store are both nil for an
// in-memory design; with a store, the caller has already persisted the
// initial snapshot and opened the log.
func newDesign(name string, eng *incsta.Engine, log *wal.Log, store *Store, queueDepth int) *design {
	if queueDepth <= 0 {
		queueDepth = defaultEditQueueDepth
	}
	d := &design{
		name:  name,
		eng:   eng,
		log:   log,
		store: store,
		reqs:  make(chan editReq, queueDepth),
		snaps: make(chan chan error, 1),
		caps:  make(chan chan *designSnapshot, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go d.serve()
	if store != nil && store.cfg.SnapshotInterval > 0 {
		go d.snapshotLoop(store.cfg.SnapshotInterval)
	}
	return d
}

// serve is the design's single-writer loop. On quit it drains edits already
// queued (their HTTP handlers are waiting on replies), persists a final
// snapshot, and exits.
func (d *design) serve() {
	defer close(d.done)
	for {
		select {
		case <-d.quit:
			d.drainAndPersist()
			return
		case req := <-d.reqs:
			req.reply <- d.applyOne(req.ed)
		case errc := <-d.snaps:
			errc <- d.persist()
		case c := <-d.caps:
			c <- d.captureLocked()
		}
	}
}

// drainAndPersist finishes queued edits and folds the final state into a
// durable snapshot — the graceful-shutdown half of the durability story.
func (d *design) drainAndPersist() {
	for {
		select {
		case req := <-d.reqs:
			req.reply <- d.applyOne(req.ed)
		default:
			if d.store != nil {
				if err := d.persist(); err != nil {
					mPersistErrors.Inc()
				}
			}
			return
		}
	}
}

// applyOne logs (durably) then applies one edit; in cluster mode a
// successful apply bumps the replication seq and ships the edit to the
// design's replicas before acknowledging. A ship failure is reported
// alongside the (already applied) report — the caller decides how hard to
// fail the acknowledgement.
func (d *design) applyOne(ed incsta.Edit) editResult {
	var payload []byte
	if d.log != nil || d.ship != nil {
		var err error
		if payload, err = json.Marshal(ed); err != nil {
			return editResult{err: fmt.Errorf("server: encode edit: %w", err)}
		}
	}
	if d.log != nil {
		if _, err := d.log.Append(payload); err != nil {
			// The edit never reached stable storage: refuse to apply it, or an
			// acknowledged state transition could vanish on restart.
			return editResult{err: fmt.Errorf("server: wal append: %w", err)}
		}
	}
	rep, err := d.eng.ApplyEdit(ed)
	if err != nil {
		return editResult{rep: rep, err: err}
	}
	seq := d.seq.Add(1)
	if d.ship != nil {
		if err := d.ship(seq, payload); err != nil {
			return editResult{rep: rep, err: err}
		}
	}
	return editResult{rep: rep}
}

// persist folds the current engine state into a durable snapshot and
// truncates the replayed log. Runs on the writer goroutine, so the state and
// the WAL high-water mark are coherent by construction.
func (d *design) persist() error {
	if d.store == nil {
		return nil
	}
	var seq uint64
	if d.log != nil {
		seq = d.log.LastSeq()
	}
	snap := snapshotOf(d.name, d.eng, seq)
	snap.EditSeq = d.seq.Load()
	snap.Epoch = d.epoch.Load()
	if err := d.store.saveSnapshot(snap); err != nil {
		return err
	}
	if d.log != nil {
		return d.log.TruncateAll()
	}
	return nil
}

// snapshotLoop periodically checkpoints the design so the WAL stays short
// and recovery fast.
func (d *design) snapshotLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.quit:
			return
		case <-t.C:
			if err := d.checkpoint(); err != nil && !errors.Is(err, ErrDesignClosed) {
				mPersistErrors.Inc()
			}
		}
	}
}

// checkpoint asks the writer loop to persist a snapshot and waits for it.
func (d *design) checkpoint() error {
	errc := make(chan error, 1)
	select {
	case d.snaps <- errc:
	case <-d.quit:
		return ErrDesignClosed
	}
	select {
	case err := <-errc:
		return err
	case <-d.done:
		return ErrDesignClosed
	}
}

// captureLocked snapshots the design state with a coherent replication seq
// and epoch. Runs on the writer goroutine.
func (d *design) captureLocked() *designSnapshot {
	var walSeq uint64
	if d.log != nil {
		walSeq = d.log.LastSeq()
	}
	snap := snapshotOf(d.name, d.eng, walSeq)
	snap.EditSeq = d.seq.Load()
	snap.Epoch = d.epoch.Load()
	return snap
}

// capture asks the writer loop for a coherent (state, seq, epoch) snapshot
// — what a full replicate ship carries. Fails once the design is closed.
func (d *design) capture() (*designSnapshot, error) {
	c := make(chan *designSnapshot, 1)
	select {
	case d.caps <- c:
	case <-d.quit:
		return nil, ErrDesignClosed
	}
	select {
	case snap := <-c:
		return snap, nil
	case <-d.done:
		return nil, ErrDesignClosed
	}
}

// submit queues one edit and waits for its result. A full queue rejects
// immediately with ErrOverloaded; cancellation of ctx abandons the wait (the
// edit may still apply); a closed design returns ErrDesignClosed.
func (d *design) submit(ctx context.Context, ed incsta.Edit) (*incsta.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-d.quit:
		return nil, ErrDesignClosed
	default:
	}
	req := editReq{ed: ed, reply: make(chan editResult, 1)}
	select {
	case d.reqs <- req:
	default:
		return nil, ErrOverloaded
	}
	select {
	case res := <-req.reply:
		return res.rep, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-d.done:
		return nil, ErrDesignClosed
	}
}

// close stops the writer loop (which persists a final snapshot), waits for
// it to exit, and closes the log.
func (d *design) close() {
	close(d.quit)
	<-d.done
	if d.log != nil {
		d.log.Close()
	}
}
