package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/incsta"
	"repro/internal/libsynth"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// newDurableServer builds a server persisting into a fault-injection
// filesystem under root "data", with WAL fsync on every append.
func newDurableServer(t *testing.T, fs *faultfs.FS, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	st := NewStore(fs, "data", StoreConfig{Policy: wal.SyncAlways})
	s := New(libsynth.File(), append([]Option{WithStore(st)}, opts...)...)
	if err := s.Recover(context.Background()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// slacksOf reads the primary-corner endpoint slacks straight off a design's
// engine — the ground truth the HTTP slacks route serves.
func slacksOf(t *testing.T, s *Server, name string) map[string]float64 {
	t.Helper()
	d, ok := s.design(name)
	if !ok {
		t.Fatalf("design %q not loaded", name)
	}
	slacks, err := d.eng.Snapshot().EndpointSlacks(500e-12, 3)
	if err != nil {
		t.Fatal(err)
	}
	return slacks
}

// mustEqualSlacks requires bit-identical endpoint slacks.
func mustEqualSlacks(t *testing.T, want, got map[string]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("endpoint count %d vs %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("endpoint %s missing after recovery", k)
		}
		if g != w {
			t.Fatalf("endpoint %s: recovered slack %v, want %v", k, g, w)
		}
	}
}

// c17Edits is the edit burst the recovery tests drive: every op kind, plus
// one rejected edit that must replay as the same rejection.
func c17Edits() []EditRequest {
	return []EditRequest{
		{Op: "resize", Gate: "U1", Strength: 4},
		{Op: "set_input_slew", Net: "G1", SlewPs: 15},
		{Op: "swap", Gate: "U2", Cell: "NAND2x4"},
		{Op: "resize", Gate: "NOPE", Strength: 2}, // rejected: unknown gate
		{Op: "resize", Gate: "U5", Strength: 8},
	}
}

func postEdit(t *testing.T, ts *httptest.Server, design string, ed EditRequest) (int, string) {
	t.Helper()
	return do(t, http.MethodPost, ts.URL+"/v1/designs/"+design+"/edits", ed, nil)
}

// TestRecoverAfterHardCrash: load, edit, power-cut (no drain, no final
// snapshot), remount the durable image, recover — the design must come back
// with bit-identical timing. The initial snapshot plus the fsynced WAL tail
// is the whole story.
func TestRecoverAfterHardCrash(t *testing.T) {
	fs := faultfs.New()
	s, ts := newDurableServer(t, fs)
	loadC17(t, ts)
	for i, ed := range c17Edits() {
		code, raw := postEdit(t, ts, "c17", ed)
		wantCode := http.StatusOK
		if i == 3 {
			wantCode = http.StatusBadRequest // the deliberately bad edit
		}
		if code != wantCode {
			t.Fatalf("edit %d: status %d: %s", i, code, raw)
		}
	}
	want := slacksOf(t, s, "c17")

	// Power cut: everything not fsynced is gone.
	fs.SetDropUnsynced(true)
	img := fs.Image()

	s2, _ := newDurableServer(t, img)
	mustEqualSlacks(t, want, slacksOf(t, s2, "c17"))

	// The recovered design keeps serving edits, and sequence numbers resume
	// past the replayed tail.
	d, _ := s2.design("c17")
	if _, err := d.submit(context.Background(), incsta.Edit{Op: incsta.OpResize, Gate: "U6", Strength: 4}); err != nil {
		t.Fatalf("edit after recovery: %v", err)
	}
}

// TestKillAfterEveryRecordRecovery is the recovery property test: for every
// prefix of the WAL — including torn tails of every partial record — the
// recovered engine must be bit-identical to a fresh engine replaying exactly
// the surviving records onto the snapshot.
func TestKillAfterEveryRecordRecovery(t *testing.T) {
	fs := faultfs.New()
	s, ts := newDurableServer(t, fs)
	loadC17(t, ts)
	d, _ := s.design("c17")

	// Drive the edits, recording the WAL byte offset after each record.
	offsets := []int64{0}
	for i, ed := range c17Edits() {
		code, raw := postEdit(t, ts, "c17", ed)
		if code != http.StatusOK && code != http.StatusBadRequest {
			t.Fatalf("edit %d: status %d: %s", i, code, raw)
		}
		sz := d.log.Size()
		if sz <= offsets[len(offsets)-1] {
			t.Fatalf("edit %d (status %d) left no WAL record", i, code)
		}
		offsets = append(offsets, sz)
	}
	walBytes, err := fs.ReadFile("data/designs/c17/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	snapBytes, err := fs.ReadFile("data/designs/c17/snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap designSnapshot
	if err := json.Unmarshal(snapBytes, &snap); err != nil {
		t.Fatal(err)
	}
	lib := libsynth.File()
	edits := c17Edits()

	for cut := 0; cut < len(offsets); cut++ {
		// Torn tails: keep 0, 1, 8 and all-but-one bytes of the next record.
		keeps := []int64{0}
		if cut+1 < len(offsets) {
			recLen := offsets[cut+1] - offsets[cut]
			keeps = append(keeps, 1, 8, recLen-1)
		}
		for _, keep := range keeps {
			name := fmt.Sprintf("cut=%d keep=%d", cut, keep)
			crashFS := faultfs.New()
			writeDurable(t, crashFS, "data/designs/c17/snapshot.json", snapBytes)
			writeDurable(t, crashFS, "data/designs/c17/wal.log", walBytes[:offsets[cut]+keep])

			s2 := New(lib, WithStore(NewStore(crashFS, "data", StoreConfig{})))
			if err := s2.Recover(context.Background()); err != nil {
				t.Fatalf("%s: recover: %v", name, err)
			}
			got := slacksOf(t, s2, "c17")

			// The reference: a fresh engine from the snapshot replaying the
			// first `cut` edits through the same entry point.
			ref, err := rebuildEngine(lib, &snap)
			if err != nil {
				t.Fatalf("%s: rebuild reference: %v", name, err)
			}
			for _, ed := range edits[:cut] {
				_, err := ref.ApplyEdit(incsta.Edit{
					Op: ed.Op, Gate: ed.Gate, Strength: ed.Strength,
					Cell: ed.Cell, Net: ed.Net, Slew: ed.SlewPs * 1e-12, Tree: ed.Tree,
				})
				if err != nil {
					if _, isRej := err.(*incsta.EditError); !isRej {
						t.Fatalf("%s: reference replay: %v", name, err)
					}
				}
			}
			want, err := ref.Snapshot().EndpointSlacks(500e-12, 3)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualSlacks(t, want, got)
			s2.Close()
		}
	}
}

// writeDurable puts content at path in a faultfs, fully durable.
func writeDurable(t *testing.T, fs *faultfs.FS, path string, data []byte) {
	t.Helper()
	dir := path[:strings.LastIndexByte(path, '/')]
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulDrainUnderLoad: SIGTERM-style shutdown in the middle of a
// concurrent edit burst and query stream must finish the accepted edits,
// persist a final snapshot, and leave zero un-replayed WAL bytes. A restart
// from the drained state reproduces the final timing exactly.
func TestGracefulDrainUnderLoad(t *testing.T) {
	fs := faultfs.New()
	s, ts := newDurableServer(t, fs)
	loadC17(t, ts)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Query stream.
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/designs/c17/slacks?period_ps=500")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	// Edit burst: alternate growing and shrinking G10 so every ack moves
	// state. 503 overloaded is an acceptable answer; silent loss is not.
	strengths := []int{1, 2, 4, 8}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			ed := EditRequest{Op: "resize", Gate: "G10", Strength: strengths[i%len(strengths)]}
			b, _ := json.Marshal(ed)
			resp, err := http.Post(ts.URL+"/v1/designs/c17/edits", "application/json", strings.NewReader(string(b)))
			if err == nil {
				resp.Body.Close()
			}
		}
	}()

	time.Sleep(20 * time.Millisecond) // let the burst overlap the drain
	d, _ := s.design("c17")
	ts.Close() // like http.Server.Shutdown: waits out in-flight requests
	close(stop)
	wg.Wait()
	s.Close() // drains queued edits, persists the final snapshot

	finalSlacks, err := d.eng.Snapshot().EndpointSlacks(500e-12, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Zero un-replayable WAL bytes: the drain folded everything into the
	// snapshot and truncated the log.
	walBytes, err := fs.ReadFile("data/designs/c17/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(walBytes) != 0 {
		t.Fatalf("%d WAL bytes left after graceful drain", len(walBytes))
	}

	s2, _ := newDurableServer(t, fs.Image())
	mustEqualSlacks(t, finalSlacks, slacksOf(t, s2, "c17"))
}

// TestDeleteRemovesPersistedState: a deleted design must not resurrect on
// restart.
func TestDeleteRemovesPersistedState(t *testing.T) {
	fs := faultfs.New()
	_, ts := newDurableServer(t, fs)
	loadC17(t, ts)
	if code, raw := do(t, http.MethodDelete, ts.URL+"/v1/designs/c17", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", code, raw)
	}
	s2, _ := newDurableServer(t, fs.Image())
	if _, ok := s2.design("c17"); ok {
		t.Fatal("deleted design resurrected by recovery")
	}
}

// TestReadyzGatesUntilRecovered: with a store configured, every design route
// answers 503 not_ready until Recover completes; liveness stays green
// throughout.
func TestReadyzGatesUntilRecovered(t *testing.T) {
	fs := faultfs.New()
	st := NewStore(fs, "data", StoreConfig{})
	s := New(libsynth.File(), WithStore(st))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	if code, _ := do(t, http.MethodGet, ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz before recovery: %d", code)
	}
	var eb errorBody
	if code, _ := do(t, http.MethodGet, ts.URL+"/v1/readyz", nil, &eb); code != http.StatusServiceUnavailable || eb.Error.Code != codeNotReady {
		t.Fatalf("readyz before recovery: %d %+v", code, eb)
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/v1/designs", nil, &eb); code != http.StatusServiceUnavailable || eb.Error.Code != codeNotReady {
		t.Fatalf("designs before recovery: %d %+v", code, eb)
	}

	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/v1/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("readyz after recovery: %d", code)
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/v1/designs", nil, nil); code != http.StatusOK {
		t.Fatalf("designs after recovery: %d", code)
	}
}
