package repro

// One benchmark per table and figure of the paper's evaluation section.
// Each bench drives the same harness cmd/repro uses, at a reduced
// Monte-Carlo effort so the full suite completes in minutes:
//
//	go test -bench=. -benchmem
//
// The expensive shared artefact — the characterised coefficients file — is
// built once and reused across benchmarks. Numbers printed by -v runs are
// the reproduction results themselves; EXPERIMENTS.md records a
// paper-vs-measured comparison from the standard profile.

import (
	"sync"
	"testing"

	"repro/internal/experiments"
)

// benchProfile trades tail precision for wall-clock time (these benches
// also run on single-core CI hosts).
var benchProfile = experiments.Profile{
	Name: "bench", CharSamples: 150, EvalSamples: 300,
	PathSamples: 20, PathSamplesHuge: 6,
	SlewGrid: []float64{10e-12, 100e-12, 300e-12, 600e-12},
	LoadGrid: []float64{0.1e-15, 0.4e-15, 2e-15, 6e-15, 10e-15},
}

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
)

func sharedCtx(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx = experiments.NewContext(benchProfile, 1)
	})
	return benchCtx
}

// formatter is what every harness result knows how to do.
type formatter interface{ Format() string }

// report runs f once per iteration, logs the rendered table/figure on the
// first iteration (so bench output doubles as the reproduction record), and
// fails the bench on error.
func report(b *testing.B, f func() (formatter, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r.Format())
		}
	}
}

func BenchmarkFig2InverterPDFs(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunFig2() })
}

func BenchmarkFig3SkewKurtosisEffect(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunFig3() })
}

func BenchmarkFig4MomentSweeps(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunFig4() })
}

func BenchmarkTable2CellModelAccuracy(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunTable2() })
}

func BenchmarkFig7ElmoreVsMC(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunFig7() })
}

func BenchmarkFig8StrengthSweep(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunFig8() })
}

func BenchmarkFig9WireCoeffErrors(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunFig9() })
}

func BenchmarkFig10WireDelayErrors(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunFig10() })
}

func BenchmarkFig11C432CriticalWires(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunFig11() })
}

// BenchmarkTable3PathAnalysis runs the path-analysis comparison on a
// representative circuit subset (two ISCAS85 rows); cmd/repro -table 3
// covers all twelve rows including the PULPino units.
func BenchmarkTable3PathAnalysis(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunTable3([]string{"c432", "c1355"}) })
}

// --- ablation benches (design-choice studies from DESIGN.md) ---------------

// BenchmarkAblationGlobalPolynomialCalibration evaluates the eq. (2)–(3)
// global response surface instead of the LUT (the paper's formula applied
// globally rather than per grid cell).
func BenchmarkAblationGlobalPolynomialCalibration(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunAblationCalibration() })
}

// BenchmarkAblationWireCoefficients compares the fitted X_FI/X_FO wire
// model against two simplifications: the raw Pelgrom prior (no fitting) and
// a driver-only model (X_FO dropped).
func BenchmarkAblationWireCoefficients(b *testing.B) {
	ctx := sharedCtx(b)
	report(b, func() (formatter, error) { return ctx.RunAblationWire() })
}
