#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end sharded-cluster check against three real
# timingd processes: boot a 3-node cluster, load a design through any node,
# stream edits, require the replica's slacks to converge bit-identical to
# the owner's, check the cluster metric families, then kill -9 one replica
# and require reads and writes to keep serving from the survivors.
#
#   scripts/cluster_smoke.sh [path-to-timingd]
#
# Builds the binary itself when no path is given. Needs curl + jq.
set -euo pipefail

BIN=${1:-}
if [[ -z "$BIN" ]]; then
  BIN=$(mktemp -d)/timingd
  go build -o "$BIN" ./cmd/timingd
fi

BASEPORT=${BASEPORT:-18470}
CIRCUIT=${CIRCUIT:-c432}
EDITS=${EDITS:-15}
PORTS=("$BASEPORT" "$((BASEPORT + 1))" "$((BASEPORT + 2))")
URLS=()
for p in "${PORTS[@]}"; do URLS+=("http://127.0.0.1:$p"); done
PEERS=$(IFS=,; echo "${URLS[*]}")
PIDS=("" "" "")

cleanup() {
  for pid in "${PIDS[@]}"; do
    [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

start() { # start <index>
  local i=$1
  "$BIN" -addr "127.0.0.1:${PORTS[$i]}" -lib synth \
    -cluster-self "${URLS[$i]}" -cluster-peers "$PEERS" \
    -cluster-replicas 1 -cluster-proxy \
    -replicate-interval 200ms -heartbeat-interval 200ms -heartbeat-timeout 300ms &
  PIDS[$i]=$!
}

wait_ready() { # wait_ready <url> <pid>
  local url=$1 pid=$2
  for _ in $(seq 1 100); do
    if curl -fsS "$url/v1/readyz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$pid" 2>/dev/null || { echo "timingd at $url died during startup" >&2; exit 1; }
    sleep 0.1
  done
  echo "timingd at $url never became ready" >&2
  exit 1
}

echo "== boot 3-node cluster on ports ${PORTS[*]}"
for i in 0 1 2; do start "$i"; done
for i in 0 1 2; do wait_ready "${URLS[$i]}" "${PIDS[$i]}"; done

echo "== load $CIRCUIT through node 0 and apply $EDITS edits"
curl -fsS -X PUT "${URLS[0]}/v1/designs/smoke" -d "{\"circuit\":\"$CIRCUIT\"}" >/dev/null

mapfile -t GATES < <(curl -fsS "${URLS[0]}/v1/designs/smoke/gates" | jq -r '.gates[].name' | head -8)
STRENGTHS=(1 2 4 8)
for i in $(seq 1 "$EDITS"); do
  g=${GATES[$((i % ${#GATES[@]}))]}
  s=${STRENGTHS[$((i % ${#STRENGTHS[@]}))]}
  code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "${URLS[0]}/v1/designs/smoke/edits" \
    -d "{\"op\":\"resize\",\"gate\":\"$g\",\"strength\":$s}")
  [[ "$code" == 200 || "$code" == 400 ]] || { echo "edit $i: HTTP $code" >&2; exit 1; }
done

echo "== discover placement"
route=$(curl -fsS "${URLS[0]}/v1/cluster/route?design=smoke")
OWNER=$(echo "$route" | jq -r '.owner')
REPLICA=$(echo "$route" | jq -r '.replicas[0]')
echo "   owner=$OWNER replica=$REPLICA"
[[ -n "$OWNER" && -n "$REPLICA" && "$OWNER" != "null" && "$REPLICA" != "null" ]] \
  || { echo "FAIL: route did not name an owner and a replica: $route" >&2; exit 1; }

echo "== wait for the replica to converge bit-identical to the owner"
converged=0
for _ in $(seq 1 100); do
  o=$(curl -fsS "$OWNER/v1/designs/smoke/slacks?period_ps=2000" | jq -S .)
  r=$(curl -fsS "$REPLICA/v1/designs/smoke/slacks?period_ps=2000" | jq -S . || true)
  if [[ -n "$r" && "$o" == "$r" ]]; then converged=1; break; fi
  sleep 0.1
done
if [[ "$converged" != 1 ]]; then
  echo "FAIL: replica slacks never converged to the owner's" >&2
  diff <(echo "$o") <(echo "$r") >&2 || true
  exit 1
fi
echo "   $(echo "$o" | jq '.slacks_ps | length') endpoint slacks bit-identical at version $(echo "$o" | jq '.version')"

echo "== cluster metric families on the owner"
metrics=$(curl -fsS "$OWNER/metrics")
for fam in cluster_replication_lag_seqs cluster_forwards_total cluster_breaker_open; do
  echo "$metrics" | grep -q "^# TYPE $fam" \
    || { echo "FAIL: metric family $fam missing from $OWNER/metrics" >&2; exit 1; }
done

echo "== kill -9 the replica; reads and writes must keep serving"
for i in 0 1 2; do
  if [[ "${URLS[$i]}" == "$REPLICA" ]]; then
    kill -9 "${PIDS[$i]}"
    wait "${PIDS[$i]}" 2>/dev/null || true
    PIDS[$i]=""
  fi
done

SURVIVORS=()
for i in 0 1 2; do [[ -n "${PIDS[$i]}" ]] && SURVIVORS+=("${URLS[$i]}"); done
for _ in $(seq 1 20); do
  for u in "${SURVIVORS[@]}"; do
    curl -fsS -L "$u/v1/designs/smoke/slacks?period_ps=2000" >/dev/null \
      || { echo "FAIL: read via $u stopped serving after replica kill" >&2; exit 1; }
  done
  sleep 0.1
done
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "${SURVIVORS[0]}/v1/designs/smoke/edits" \
  -d "{\"op\":\"resize\",\"gate\":\"${GATES[0]}\",\"strength\":2}")
[[ "$code" == 200 ]] || { echo "FAIL: edit via survivor after replica kill: HTTP $code" >&2; exit 1; }

echo "OK: 3-node cluster replicated bit-identically, survived a replica kill -9, and kept serving reads and writes"
