#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end sharded-cluster check against three real
# timingd processes: boot a 3-node durable cluster, load a design through
# any node, stream edits, require the replica's slacks to converge
# bit-identical to the owner's, check the cluster + runtime metric
# families, push a traced and request-ID-correlated request through a proxy
# hop and a redirect, merge the per-node trace files with cmd/tracemerge,
# kill -9 one replica and require reads and writes to keep serving — then
# restart the whole cluster from its data dirs, kill -9 the owner, and
# require a surviving replica to promote itself under a strictly greater
# lease epoch with bit-identical slacks, writes resuming on the new owner,
# and the revived old owner fenced with 409 stale_epoch.
#
#   scripts/cluster_smoke.sh [path-to-timingd]
#
# Builds the binaries itself when no path is given. Needs curl + jq +
# python3.
set -euo pipefail

WORK=$(mktemp -d)
BIN=${1:-}
if [[ -z "$BIN" ]]; then
  BIN=$WORK/timingd
  go build -o "$BIN" ./cmd/timingd
fi
MERGEBIN=$WORK/tracemerge
go build -o "$MERGEBIN" ./cmd/tracemerge

BASEPORT=${BASEPORT:-18470}
CIRCUIT=${CIRCUIT:-c432}
EDITS=${EDITS:-15}
PORTS=("$BASEPORT" "$((BASEPORT + 1))" "$((BASEPORT + 2))")
URLS=()
for p in "${PORTS[@]}"; do URLS+=("http://127.0.0.1:$p"); done
PEERS=$(IFS=,; echo "${URLS[*]}")
PIDS=("" "" "")

cleanup() {
  for pid in "${PIDS[@]}"; do
    [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

start() { # start <index> [extra flags...]
  local i=$1
  shift
  # stderr appends to a per-node log (kept across restarts) so request-ID
  # correlation can be grepped per node; -trace-sample 1 traces every
  # request; the trace file is written at graceful shutdown.
  "$BIN" -addr "127.0.0.1:${PORTS[$i]}" -lib synth \
    -cluster-self "${URLS[$i]}" -cluster-peers "$PEERS" \
    -cluster-replicas 1 -data-dir "$WORK/data$i" \
    -replicate-interval 200ms -heartbeat-interval 200ms -heartbeat-timeout 300ms \
    -promotion-interval 200ms \
    -trace-sample 1 "$@" 2>>"$WORK/node$i.log" &
  PIDS[$i]=$!
}

wait_ready() { # wait_ready <url> <pid>
  local url=$1 pid=$2
  for _ in $(seq 1 100); do
    if curl -fsS "$url/v1/readyz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$pid" 2>/dev/null || { echo "timingd at $url died during startup" >&2; exit 1; }
    sleep 0.1
  done
  echo "timingd at $url never became ready" >&2
  exit 1
}

echo "== boot 3-node cluster on ports ${PORTS[*]}"
for i in 0 1 2; do start "$i" -cluster-proxy -trace-out "$WORK/trace-node$i.json"; done
for i in 0 1 2; do wait_ready "${URLS[$i]}" "${PIDS[$i]}"; done

echo "== load $CIRCUIT through node 0 and apply $EDITS edits"
curl -fsS -X PUT "${URLS[0]}/v1/designs/smoke" -d "{\"circuit\":\"$CIRCUIT\"}" >/dev/null

mapfile -t GATES < <(curl -fsS "${URLS[0]}/v1/designs/smoke/gates" | jq -r '.gates[].name' | head -8)
STRENGTHS=(1 2 4 8)
for i in $(seq 1 "$EDITS"); do
  g=${GATES[$((i % ${#GATES[@]}))]}
  s=${STRENGTHS[$((i % ${#STRENGTHS[@]}))]}
  code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "${URLS[0]}/v1/designs/smoke/edits" \
    -d "{\"op\":\"resize\",\"gate\":\"$g\",\"strength\":$s}")
  [[ "$code" == 200 || "$code" == 400 ]] || { echo "edit $i: HTTP $code" >&2; exit 1; }
done

echo "== discover placement"
route=$(curl -fsS "${URLS[0]}/v1/cluster/route?design=smoke")
OWNER=$(echo "$route" | jq -r '.owner')
REPLICA=$(echo "$route" | jq -r '.replicas[0]')
echo "   owner=$OWNER replica=$REPLICA"
[[ -n "$OWNER" && -n "$REPLICA" && "$OWNER" != "null" && "$REPLICA" != "null" ]] \
  || { echo "FAIL: route did not name an owner and a replica: $route" >&2; exit 1; }

echo "== wait for the replica to converge bit-identical to the owner"
converged=0
for _ in $(seq 1 100); do
  o=$(curl -fsS "$OWNER/v1/designs/smoke/slacks?period_ps=2000" | jq -S .)
  r=$(curl -fsS "$REPLICA/v1/designs/smoke/slacks?period_ps=2000" | jq -S . || true)
  if [[ -n "$r" && "$o" == "$r" ]]; then converged=1; break; fi
  sleep 0.1
done
if [[ "$converged" != 1 ]]; then
  echo "FAIL: replica slacks never converged to the owner's" >&2
  diff <(echo "$o") <(echo "$r") >&2 || true
  exit 1
fi
echo "   $(echo "$o" | jq '.slacks_ps | length') endpoint slacks bit-identical at version $(echo "$o" | jq '.version')"

echo "== cluster + runtime metric families on the owner"
metrics=$(curl -fsS "$OWNER/metrics")
for fam in cluster_replication_lag_seqs cluster_forwards_total cluster_breaker_open \
           timingd_cluster_requests_total timingd_requests_total \
           process_goroutines process_heap_inuse_bytes process_gc_pause_p99_seconds; do
  grep -q "^# TYPE $fam" <<<"$metrics" \
    || { echo "FAIL: metric family $fam missing from $OWNER/metrics" >&2; exit 1; }
done

OWNER_I=-1 REPLICA_I=-1 NEITHER_I=-1
for i in 0 1 2; do
  case "${URLS[$i]}" in
    "$OWNER") OWNER_I=$i ;;
    "$REPLICA") REPLICA_I=$i ;;
    *) NEITHER_I=$i ;;
  esac
done
NEITHER=${URLS[$NEITHER_I]}

grep_log() { # grep_log <pattern> <node-index> — retries: the access log lands
  local pat=$1 i=$2 # just after the response, so allow a short settle window
  for _ in $(seq 1 50); do
    grep -q "$pat" "$WORK/node$i.log" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "FAIL: pattern '$pat' never appeared in node $i's log" >&2
  tail -20 "$WORK/node$i.log" >&2 || true
  exit 1
}

echo "== traced request through a proxy hop (via node $NEITHER_I, owner node $OWNER_I)"
RID=smoke-trace-proxy
TP="00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
hdrs=$(curl -fsS -D - -o /dev/null -H "X-Request-ID: $RID" -H "traceparent: $TP" \
  "$NEITHER/v1/designs/smoke")
grep -qi <<<"$hdrs" "^x-request-id: $RID" \
  || { echo "FAIL: proxied response did not echo X-Request-ID: $RID" >&2; echo "$hdrs" >&2; exit 1; }
grep -qi <<<"$hdrs" "^traceparent: 00-0123456789abcdef0123456789abcdef-" \
  || { echo "FAIL: proxied response did not carry the trace ID" >&2; echo "$hdrs" >&2; exit 1; }
[[ $(echo "$hdrs" | grep -ci "^x-request-id:") == 1 ]] \
  || { echo "FAIL: X-Request-ID duplicated on proxied response" >&2; echo "$hdrs" >&2; exit 1; }
grep_log "request_id=$RID" "$NEITHER_I"
grep_log "request_id=$RID" "$OWNER_I"
echo "   request id $RID in both the proxying node's and the owner's logs"

echo "== traced request through a redirect (restart node $NEITHER_I without -cluster-proxy)"
kill "${PIDS[$NEITHER_I]}"
wait "${PIDS[$NEITHER_I]}" 2>/dev/null || true  # SIGTERM → graceful, writes trace file
start "$NEITHER_I" -trace-out "$WORK/trace-node$NEITHER_I-restart.json"
wait_ready "$NEITHER" "${PIDS[$NEITHER_I]}"
RID2=smoke-trace-redirect
hdrs=$(curl -sS -D - -o /dev/null -H "X-Request-ID: $RID2" "$NEITHER/v1/designs/smoke")
grep -q <<<"$hdrs" "HTTP/1.1 307" \
  || { echo "FAIL: non-proxy node did not 307-redirect" >&2; echo "$hdrs" >&2; exit 1; }
grep -qi <<<"$hdrs" "^x-request-id: $RID2" \
  || { echo "FAIL: 307 did not echo X-Request-ID: $RID2" >&2; echo "$hdrs" >&2; exit 1; }
code=$(curl -sS -o /dev/null -w '%{http_code}' -H "X-Request-ID: $RID2" -L \
  "$NEITHER/v1/designs/smoke")
[[ "$code" == 200 ]] || { echo "FAIL: following the redirect: HTTP $code" >&2; exit 1; }
grep_log "request_id=$RID2" "$OWNER_I"
echo "   request id $RID2 followed the 307 to the owner's log"

echo "== slow-request log on the owner"
curl -fsS "$OWNER/v1/debug/slow" | jq -e '.slowest | length > 0' >/dev/null \
  || { echo "FAIL: owner slow-request log is empty" >&2; exit 1; }

echo "== kill -9 the replica; reads and writes must keep serving"
for i in 0 1 2; do
  if [[ "${URLS[$i]}" == "$REPLICA" ]]; then
    kill -9 "${PIDS[$i]}"
    wait "${PIDS[$i]}" 2>/dev/null || true
    PIDS[$i]=""
  fi
done

SURVIVORS=()
for i in 0 1 2; do [[ -n "${PIDS[$i]}" ]] && SURVIVORS+=("${URLS[$i]}"); done
for _ in $(seq 1 20); do
  for u in "${SURVIVORS[@]}"; do
    curl -fsS -L "$u/v1/designs/smoke/slacks?period_ps=2000" >/dev/null \
      || { echo "FAIL: read via $u stopped serving after replica kill" >&2; exit 1; }
  done
  sleep 0.1
done
# Write through the owner: the restarted neither node no longer proxies.
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$OWNER/v1/designs/smoke/edits" \
  -d "{\"op\":\"resize\",\"gate\":\"${GATES[0]}\",\"strength\":2}")
[[ "$code" == 200 ]] || { echo "FAIL: edit via survivor after replica kill: HTTP $code" >&2; exit 1; }

echo "== stop survivors gracefully and merge per-node trace files"
for i in 0 1 2; do
  if [[ -n "${PIDS[$i]}" ]]; then
    kill "${PIDS[$i]}" 2>/dev/null || true
    wait "${PIDS[$i]}" 2>/dev/null || true
    PIDS[$i]=""
  fi
done
for f in "$WORK/trace-node$OWNER_I.json" "$WORK/trace-node$NEITHER_I.json"; do
  [[ -s "$f" ]] || { echo "FAIL: trace file $f missing or empty" >&2; exit 1; }
done
"$MERGEBIN" -trace 0123456789abcdef0123456789abcdef -out "$WORK/merged.json" \
  "$WORK/trace-node$OWNER_I.json" "$WORK/trace-node$NEITHER_I.json"

python3 - "$WORK/merged.json" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
evs = m["traceEvents"]
spans = [e for e in evs if e.get("args", {}).get("span_id")]
pids = {e["pid"] for e in spans}
assert len(pids) >= 2, f"merged trace covers {len(pids)} node(s), want >= 2"
ids = {e["args"]["span_id"]: e["pid"] for e in spans}
cross = [e for e in spans
         if e["args"].get("parent_span_id")
         and ids.get(e["args"]["parent_span_id"], e["pid"]) != e["pid"]]
assert cross, "no span links to a parent recorded on the other node"
assert any(e.get("ph") == "s" for e in evs), "no flow-start events"
assert any(e.get("ph") == "f" for e in evs), "no flow-finish events"
print(f"   merged trace: {len(spans)} spans across {len(pids)} nodes, "
      f"{len(cross)} cross-node parent link(s)")
PY

echo "== restart the full cluster from its data dirs"
for i in 0 1 2; do start "$i"; done
for i in 0 1 2; do wait_ready "${URLS[$i]}" "${PIDS[$i]}"; done

echo "== wait for ownership to re-establish and a replica to catch up"
design_status() { curl -fsS "$1/v1/cluster/designs/smoke" 2>/dev/null || true; }
GEN_OWNER="" GEN_EPOCH=0 CAUGHT=""
for _ in $(seq 1 150); do
  o=$(design_status "${URLS[0]}" | jq -r '.lease.owner // empty')
  if [[ -n "$o" ]]; then
    ost=$(design_status "$o")
    oseq=$(echo "$ost" | jq -r '.local.seq // 0')
    if [[ "$oseq" != 0 && $(echo "$ost" | jq -r '.local.fenced') == false ]]; then
      for u in "${URLS[@]}"; do
        [[ "$u" == "$o" ]] && continue
        rst=$(design_status "$u")
        if [[ $(echo "$rst" | jq -r '.local.role // empty') == replica \
           && $(echo "$rst" | jq -r '.local.seq // 0') == "$oseq" ]]; then
          GEN_OWNER=$o
          GEN_EPOCH=$(echo "$ost" | jq -r '.lease.epoch')
          CAUGHT=$u
          break 2
        fi
      done
    fi
  fi
  sleep 0.2
done
[[ -n "$GEN_OWNER" && -n "$CAUGHT" ]] \
  || { echo "FAIL: no unfenced owner with a caught-up replica after full restart" >&2; exit 1; }
[[ "$GEN_EPOCH" -ge 2 ]] \
  || { echo "FAIL: recovered owner re-elected at epoch $GEN_EPOCH, want >= 2" >&2; exit 1; }
echo "   owner=$GEN_OWNER epoch=$GEN_EPOCH caught-up-replica=$CAUGHT"
PRE=$(curl -fsS -L "$GEN_OWNER/v1/designs/smoke/slacks?period_ps=2000" | jq -S .)

echo "== kill -9 the owner; a surviving replica must promote under a higher epoch"
for i in 0 1 2; do
  if [[ "${URLS[$i]}" == "$GEN_OWNER" ]]; then
    kill -9 "${PIDS[$i]}"
    wait "${PIDS[$i]}" 2>/dev/null || true
    PIDS[$i]=""
    GEN_OWNER_I=$i
  fi
done
# Both survivors hold durable replica copies (the earlier replica kill moved
# the replica, the restart recovered both), so the jittered election may be
# won by either one — accept whichever promotes.
NEWOWNER=""
for _ in $(seq 1 150); do
  for u in "${URLS[@]}"; do
    [[ "$u" == "$GEN_OWNER" ]] && continue
    st=$(design_status "$u")
    if [[ $(echo "$st" | jq -r '.local.role // empty') == owner \
       && $(echo "$st" | jq -r '.local.fenced') == false \
       && $(echo "$st" | jq -r '.lease.epoch // 0') -gt "$GEN_EPOCH" ]] 2>/dev/null; then
      NEW_EPOCH=$(echo "$st" | jq -r '.lease.epoch')
      NEWOWNER=$u
      break 2
    fi
  done
  sleep 0.2
done
[[ -n "$NEWOWNER" ]] || { echo "FAIL: no replica promoted after owner kill -9" >&2; exit 1; }
echo "   promoted: $NEWOWNER now owns smoke at epoch $NEW_EPOCH (was $GEN_EPOCH)"

POST=$(curl -fsS "$NEWOWNER/v1/designs/smoke/slacks?period_ps=2000" | jq -S .)
if [[ "$POST" != "$PRE" ]]; then
  echo "FAIL: promoted owner's slacks diverge from the dead owner's" >&2
  diff <(echo "$PRE") <(echo "$POST") >&2 || true
  exit 1
fi
echo "   slacks bit-identical across the failover"

wrote=0
# Upsizing to the max strength is always applicable (pin-cap deltas are
# non-negative), so anything but an eventual 200 is a real failure.
for _ in $(seq 1 50); do
  out=$(curl -sS -w '\n%{http_code}' -X POST "$NEWOWNER/v1/designs/smoke/edits" \
    -d "{\"op\":\"resize\",\"gate\":\"${GATES[1]}\",\"strength\":8}")
  code=$(echo "$out" | tail -1)
  [[ "$code" == 200 ]] && { wrote=1; break; }
  sleep 0.2
done
[[ "$wrote" == 1 ]] \
  || { echo "FAIL: writes never resumed on the promoted owner (last: $out)" >&2; exit 1; }
echo "   writes resumed on the promoted owner"

echo "== revive the killed owner; its stale epoch must be fenced"
start "$GEN_OWNER_I"
wait_ready "$GEN_OWNER" "${PIDS[$GEN_OWNER_I]}"
stale=$(curl -sS -w '\n%{http_code}' -X POST "$NEWOWNER/v1/internal/edits" \
  -H 'X-Timingd-Internal: edits' -H "X-Timingd-Peer: $GEN_OWNER" \
  -d "{\"design\":\"smoke\",\"seq\":999999,\"epoch\":$GEN_EPOCH,\"payload\":{\"op\":\"resize\",\"gate\":\"${GATES[0]}\",\"strength\":4}}")
code=$(echo "$stale" | tail -1)
body=$(echo "$stale" | head -1)
[[ "$code" == 409 ]] \
  || { echo "FAIL: old-epoch internal edit answered HTTP $code, want 409: $body" >&2; exit 1; }
[[ $(echo "$body" | jq -r '.error.code') == stale_epoch ]] \
  || { echo "FAIL: 409 body does not carry code stale_epoch: $body" >&2; exit 1; }
echo "   epoch $GEN_EPOCH traffic rejected with 409 stale_epoch"

rejoined=0
for _ in $(seq 1 150); do
  back=$(curl -fsS -L "$GEN_OWNER/v1/designs/smoke/slacks?period_ps=2000" 2>/dev/null | jq -S . || true)
  cur=$(curl -fsS -L "$NEWOWNER/v1/designs/smoke/slacks?period_ps=2000" 2>/dev/null | jq -S . || true)
  if [[ -n "$back" && -n "$cur" && "$back" == "$cur" ]]; then rejoined=1; break; fi
  sleep 0.2
done
[[ "$rejoined" == 1 ]] || { echo "FAIL: revived owner never rejoined with current reads" >&2; exit 1; }
echo "   revived owner serves current reads again"

echo "== lease metric families on the promoted owner"
metrics=$(curl -fsS "$NEWOWNER/metrics")
for fam in cluster_promotions_total cluster_fenced_requests_total cluster_lease_epoch; do
  grep -q "^# TYPE $fam" <<<"$metrics" \
    || { echo "FAIL: metric family $fam missing from $NEWOWNER/metrics" >&2; exit 1; }
done
promos=$(echo "$metrics" | awk '$1 == "cluster_promotions_total" {print int($2)}')
[[ "${promos:-0}" -ge 1 ]] \
  || { echo "FAIL: cluster_promotions_total = ${promos:-0}, want >= 1" >&2; exit 1; }

echo "OK: 3-node cluster replicated bit-identically, correlated one request ID across a proxy hop and a redirect, merged cross-node traces, survived a replica kill -9, recovered from a full restart, promoted a replica under a higher epoch after an owner kill -9 with bit-identical slacks, and fenced the revived owner's stale epoch"
