#!/usr/bin/env bash
# crash_smoke.sh — end-to-end crash-recovery check against a real timingd
# process: load a design, stream an edit burst, kill -9 the server, restart
# it on the same -data-dir, and require bit-identical endpoint slacks.
#
#   scripts/crash_smoke.sh [path-to-timingd]
#
# Builds the binary itself when no path is given. Needs curl + jq.
set -euo pipefail

BIN=${1:-}
if [[ -z "$BIN" ]]; then
  BIN=$(mktemp -d)/timingd
  go build -o "$BIN" ./cmd/timingd
fi

DATA=$(mktemp -d)
PORT=${PORT:-18450}
BASE="http://127.0.0.1:$PORT"
CIRCUIT=${CIRCUIT:-c432}
EDITS=${EDITS:-25}
PID=""

cleanup() { [[ -n "$PID" ]] && kill -9 "$PID" 2>/dev/null || true; }
trap cleanup EXIT

start() {
  "$BIN" -addr "127.0.0.1:$PORT" -lib synth -data-dir "$DATA" -fsync always &
  PID=$!
}

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/v1/readyz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$PID" 2>/dev/null || { echo "timingd died during startup" >&2; exit 1; }
    sleep 0.1
  done
  echo "timingd never became ready" >&2
  exit 1
}

echo "== first boot: load $CIRCUIT and apply $EDITS edits"
start
wait_ready
curl -fsS -X PUT "$BASE/v1/designs/smoke" -d "{\"circuit\":\"$CIRCUIT\"}" >/dev/null

# Resize a rotating set of gates through the strength ladder. Every edit is
# acknowledged (and therefore in the WAL) before the next one is sent.
mapfile -t GATES < <(curl -fsS "$BASE/v1/designs/smoke/gates" | jq -r '.gates[].name' | head -8)
STRENGTHS=(1 2 4 8)
for i in $(seq 1 "$EDITS"); do
  g=${GATES[$((i % ${#GATES[@]}))]}
  s=${STRENGTHS[$((i % ${#STRENGTHS[@]}))]}
  code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/designs/smoke/edits" \
    -d "{\"op\":\"resize\",\"gate\":\"$g\",\"strength\":$s}")
  [[ "$code" == 200 || "$code" == 400 ]] || { echo "edit $i: HTTP $code" >&2; exit 1; }
done

# version is the edit counter of the in-memory engine; a rebuilt engine may
# number differently, so the durability contract is over the timing values.
before=$(curl -fsS "$BASE/v1/designs/smoke/slacks?period_ps=2000" | jq -S 'del(.version)')

echo "== kill -9 (no drain, no final snapshot)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== restart on the same data dir"
start
wait_ready
after=$(curl -fsS "$BASE/v1/designs/smoke/slacks?period_ps=2000" | jq -S 'del(.version)')

kill "$PID" 2>/dev/null
wait "$PID" 2>/dev/null || true
PID=""

if [[ "$before" != "$after" ]]; then
  echo "FAIL: endpoint slacks diverged across crash recovery" >&2
  diff <(echo "$before") <(echo "$after") >&2 || true
  exit 1
fi
echo "OK: $(echo "$after" | jq '.slacks_ps | length') endpoint slacks bit-identical across kill -9"
