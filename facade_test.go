package repro

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/libsynth"
)

// TestFacadeEndToEnd exercises the public API the examples are written
// against: characterise → fit → query, plus benchmark generation,
// extraction, and the coefficients-file round trip.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Steps = 220

	arc := Arc{Cell: "INVx1", Pin: "A", InEdge: Rising}
	char, err := CharacterizeArc(cfg, arc,
		[]float64{10e-12, 60e-12, 200e-12, 400e-12},
		[]float64{0.4e-15, 1.2e-15, 3e-15, 6e-15},
		80, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := FitArc(char)
	if err != nil {
		t.Fatal(err)
	}
	q0 := model.Quantile(0, 50e-12, 1e-15)
	q3 := model.Quantile(3, 50e-12, 1e-15)
	if !(q3 > q0 && q0 > 0) {
		t.Fatalf("facade quantiles: q0=%v q3=%v", q0, q3)
	}

	// Coefficients file round trip through the facade.
	f := NewTimingFile(cfg)
	f.AddArc(model)
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTimingFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Arc("INVx1", "A", Rising)
	if err != nil {
		t.Fatal(err)
	}
	if got.Quantile(3, 50e-12, 1e-15) != q3 {
		t.Fatal("reloaded model evaluates differently")
	}
}

func TestFacadeBenchmarksAndParasitics(t *testing.T) {
	cfg := DefaultConfig()
	nl, err := GenerateBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	trees, err := ExtractParasitics(cfg, nl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no parasitic trees")
	}
	for _, net := range nl.Inputs {
		if trees[net] == nil {
			t.Fatalf("input net %s lacks a tree", net)
		}
		break
	}
}

func TestFacadeHelpers(t *testing.T) {
	if WireQuantile(10e-12, 0.1, 3) != 13e-12 {
		t.Fatal("WireQuantile broken")
	}
	if CellName("NAND2", 4) != "NAND2x4" {
		t.Fatal("CellName broken")
	}
	cfg := DefaultConfig()
	if len(LibraryCells(cfg)) != 16 {
		t.Fatal("library cell list wrong")
	}
	if Default28nmTech().Vdd != 0.6 {
		t.Fatal("default supply should be the paper's 0.6 V")
	}
	if Reference.Slew != 10e-12 || Reference.Load != 0.4e-15 {
		t.Fatal("reference operating point drifted from the paper's")
	}
}

// TestFacadeV1Constructors exercises the redesigned context-first
// constructors: functional options, multi-corner batched analysis, the
// incremental engine, typed-error surfacing, and the deprecated legacy
// shapes staying equivalent.
func TestFacadeV1Constructors(t *testing.T) {
	ctx := context.Background()
	lib := libsynth.File()
	nl, err := GenerateBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	trees, err := ExtractParasitics(DefaultConfig(), nl, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Missing parasitics is a typed options error, caught up front.
	var oe *OptionsError
	if _, err := NewTimer(ctx, lib, nl); !errors.As(err, &oe) {
		t.Fatalf("NewTimer without parasitics: %v", err)
	}

	timer, err := NewTimer(ctx, lib, nl, WithParasitics(trees))
	if err != nil {
		t.Fatal(err)
	}
	results, err := timer.AnalyzeAll(ctx, AnalyzeOptions{
		Corners: CornerSet{Corners: []Corner{
			{Name: "typ"}, {Name: "slow", CapScale: 1.2},
		}},
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("batched analysis returned %d results", len(results))
	}
	if results[1].ArrivalQ[0] <= results[0].ArrivalQ[0] {
		t.Fatal("cap-derated corner should be slower")
	}

	// The deprecated legacy shape must return an equivalent timer.
	legacy, err := NewTimerLegacy(lib, nl, trees, STAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := timer.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	b, err := legacy.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.ArrivalQ[0] != b.ArrivalQ[0] {
		t.Fatalf("legacy timer diverges: %v vs %v", b.ArrivalQ[0], a.ArrivalQ[0])
	}

	// Incremental engine through the new constructor, with a typed edit
	// rejection.
	eng, err := NewIncrementalEngine(ctx, lib, nl,
		WithParasitics(trees), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	var ee *EditError
	if _, err := eng.ResizeCell("no-such-gate", 4); !errors.As(err, &ee) {
		t.Fatalf("bad edit should be an *EditError: %v", err)
	}
	if eng.Snapshot().Result().ArrivalQ[0] != a.ArrivalQ[0] {
		t.Fatal("engine initial state diverges from fresh analysis")
	}

	// A canceled context aborts construction.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := NewTimer(canceled, lib, nl, WithParasitics(trees)); err == nil {
		t.Fatal("canceled context accepted")
	}
}
