package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineEntry mirrors one benchmarks[] element of BENCH_pr*.json. Only the
// "after" timing participates in the gate; before/speedup document history.
type baselineEntry struct {
	Name    string `json:"name"`
	Package string `json:"package"`
	After   struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"after"`
}

type baselineFile struct {
	Description string          `json:"description"`
	Benchmarks  []baselineEntry `json:"benchmarks"`
}

func loadBaseline(path string) (map[string]baselineEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	base := make(map[string]baselineEntry, len(bf.Benchmarks))
	for _, b := range bf.Benchmarks {
		if b.Name == "" || b.After.NsPerOp <= 0 {
			return nil, fmt.Errorf("baseline %s: entry %q has no after.ns_per_op", path, b.Name)
		}
		base[b.Name] = b
	}
	return base, nil
}

// measurement is the fastest observed run of one benchmark.
type measurement struct {
	pkg     string
	nsPerOp float64
}

// testEvent is the subset of the `go test -json` event schema we consume.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result line as printed by the testing
// package: name (with the -GOMAXPROCS suffix), iteration count, ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)

// resultLine matches a result line with the name elided — in -json mode the
// testing package often emits the benchmark name as its own output event and
// the timing on the next line; the name then rides in the event's Test field.
var resultLine = regexp.MustCompile(`^\d+\s+([0-9.eE+]+) ns/op`)

// gomaxprocsSuffix strips the trailing -N of a fully qualified bench name.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// nameOnlyLine matches the name-only prefix the testing package prints
// before a result ("BenchmarkFoo \t" or a bare "BenchmarkFoo" line). With
// -count>1, test2json attributes only the first repetition's timing to a
// Test field; later repetitions arrive as bare result lines whose name
// appears solely in the preceding name-only output event.
var nameOnlyLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s*$`)

// parseStream extracts benchmark timings from a `go test -json` stream.
// Lines that are not JSON are treated as raw `go test -bench` output, so the
// tool works on both piped -json runs and plain captured logs. Repeated runs
// of the same benchmark (-count=N) keep the minimum ns/op.
func parseStream(r io.Reader) (map[string]measurement, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	measured := make(map[string]measurement)
	pending := make(map[string]string) // package → last name-only bench line
	record := func(name, pkg string, ns float64) {
		if ns <= 0 {
			return
		}
		if prev, ok := measured[name]; !ok || ns < prev.nsPerOp {
			measured[name] = measurement{pkg: pkg, nsPerOp: ns}
		}
	}
	for sc.Scan() {
		line := sc.Text()
		pkg, test := "", ""
		text := line
		if strings.HasPrefix(strings.TrimSpace(line), "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				pkg, test = ev.Package, ev.Test
				text = strings.TrimSuffix(ev.Output, "\n")
			}
		}
		text = strings.TrimSpace(text)
		if m := benchLine.FindStringSubmatch(text); m != nil {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err == nil {
				record(m[1], pkg, ns)
			}
			continue
		}
		if m := nameOnlyLine.FindStringSubmatch(text); m != nil {
			pending[pkg] = m[1]
			continue
		}
		// Name-elided form: "     145\t    140381 ns/op" with the benchmark
		// name carried by the surrounding -json event's Test field or, for
		// -count repetitions past the first, by the preceding name-only line.
		if m := resultLine.FindStringSubmatch(text); m != nil {
			name := gomaxprocsSuffix.ReplaceAllString(test, "")
			if !strings.HasPrefix(name, "Benchmark") {
				name = pending[pkg]
			}
			if strings.HasPrefix(name, "Benchmark") {
				ns, err := strconv.ParseFloat(m[1], 64)
				if err == nil {
					record(name, pkg, ns)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read stream: %v", err)
	}
	return measured, nil
}
