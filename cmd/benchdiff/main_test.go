package main

import (
	"strings"
	"testing"
)

const jsonStream = `{"Time":"2026-01-01T00:00:00Z","Action":"start","Package":"repro/internal/circuit"}
{"Time":"2026-01-01T00:00:01Z","Action":"output","Package":"repro/internal/circuit","Output":"goos: linux\n"}
{"Time":"2026-01-01T00:00:01Z","Action":"output","Package":"repro/internal/circuit","Output":"BenchmarkTransientInverter-4 \t     100\t    150000 ns/op\t   15784 B/op\t      64 allocs/op\n"}
{"Time":"2026-01-01T00:00:02Z","Action":"output","Package":"repro/internal/circuit","Output":"BenchmarkTransientInverter-4 \t     120\t    130000 ns/op\n"}
{"Time":"2026-01-01T00:00:03Z","Action":"output","Package":"repro/internal/charlib","Output":"BenchmarkMCArc-4 \t       1\t 9000000 ns/op\n"}
{"Time":"2026-01-01T00:00:04Z","Action":"pass","Package":"repro/internal/charlib"}
`

func TestParseStreamJSON(t *testing.T) {
	measured, err := parseStream(strings.NewReader(jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	inv, ok := measured["BenchmarkTransientInverter"]
	if !ok {
		t.Fatalf("BenchmarkTransientInverter missing: %v", measured)
	}
	if inv.nsPerOp != 130000 {
		t.Errorf("expected min of repeated runs (130000), got %g", inv.nsPerOp)
	}
	if inv.pkg != "repro/internal/circuit" {
		t.Errorf("package not carried through: %q", inv.pkg)
	}
	if mc := measured["BenchmarkMCArc"]; mc.nsPerOp != 9e6 {
		t.Errorf("BenchmarkMCArc ns/op = %g, want 9e6", mc.nsPerOp)
	}
}

func TestParseStreamNameElidedForm(t *testing.T) {
	// In -json mode the testing package often prints the benchmark name as
	// one output event and the timing on the next line; the name then only
	// appears in the event's Test field.
	stream := `{"Action":"output","Package":"repro/internal/circuit","Test":"BenchmarkTransientChain5","Output":"BenchmarkTransientChain5\n"}
{"Action":"output","Package":"repro/internal/circuit","Test":"BenchmarkTransientChain5","Output":"      36\t    602250 ns/op\n"}
`
	measured, err := parseStream(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := measured["BenchmarkTransientChain5"]
	if !ok || m.nsPerOp != 602250 {
		t.Fatalf("name-elided parse: got %+v", measured)
	}
}

func TestParseStreamCountRepetitionsKeepMin(t *testing.T) {
	// With -count>1, test2json attributes only the first repetition to a
	// Test field; later repetitions arrive as bare result lines preceded by
	// a name-only output event with no Test. The minimum must still win.
	stream := `{"Action":"output","Package":"repro/internal/circuit","Test":"BenchmarkTransientInverter","Output":"BenchmarkTransientInverter \t"}
{"Action":"output","Package":"repro/internal/circuit","Test":"BenchmarkTransientInverter","Output":"       4\t    169904 ns/op\t   15808 B/op\t      66 allocs/op\n"}
{"Action":"output","Package":"repro/internal/circuit","Output":"BenchmarkTransientInverter \t"}
{"Action":"output","Package":"repro/internal/circuit","Output":"       4\t    123767 ns/op\t   15808 B/op\t      66 allocs/op\n"}
{"Action":"output","Package":"repro/internal/circuit","Output":"BenchmarkTransientInverter \t"}
{"Action":"output","Package":"repro/internal/circuit","Output":"       4\t    251929 ns/op\t   15808 B/op\t      66 allocs/op\n"}
`
	measured, err := parseStream(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := measured["BenchmarkTransientInverter"]
	if !ok {
		t.Fatalf("benchmark missing: %+v", measured)
	}
	if m.nsPerOp != 123767 {
		t.Errorf("expected min across -count repetitions (123767), got %g", m.nsPerOp)
	}
}

func TestParseStreamRawText(t *testing.T) {
	raw := "goos: linux\nBenchmarkFoo-8 \t 200 \t 5500 ns/op\nPASS\n"
	measured, err := parseStream(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m := measured["BenchmarkFoo"]; m.nsPerOp != 5500 {
		t.Errorf("raw-text parse: got %+v", measured)
	}
}

func baseOf(name string, ns float64) map[string]baselineEntry {
	e := baselineEntry{Name: name}
	e.After.NsPerOp = ns
	return map[string]baselineEntry{name: e}
}

func TestCompareClassification(t *testing.T) {
	cases := []struct {
		name     string
		baseline float64
		measured float64
		want     string
	}{
		{"within tolerance", 1000, 1100, statusOK},
		{"exact", 1000, 1000, statusOK},
		{"just under gate", 1000, 1199, statusOK},
		{"over gate", 1000, 1201, statusRegression},
		{"much faster", 1000, 700, statusImproved},
	}
	for _, c := range cases {
		rows := compare(baseOf("BenchmarkX", c.baseline),
			map[string]measurement{"BenchmarkX": {nsPerOp: c.measured}}, 0.20)
		if len(rows) != 1 || rows[0].Status != c.want {
			t.Errorf("%s: got %+v, want status %s", c.name, rows, c.want)
		}
	}
}

func TestCompareDisjointSetsNeverGate(t *testing.T) {
	rows := compare(
		baseOf("BenchmarkOld", 1000),
		map[string]measurement{"BenchmarkNew": {nsPerOp: 1}},
		0.20)
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %+v", rows)
	}
	for _, r := range rows {
		if r.Status == statusRegression {
			t.Errorf("disjoint benchmark %s flagged as regression", r.Name)
		}
	}
	if countCompared(rows) != 0 {
		t.Errorf("disjoint rows counted as compared")
	}
}
