// Command benchdiff gates benchmark regressions against a recorded baseline.
//
// It reads a `go test -json` stream (or raw `go test -bench` text) from a
// file or stdin, extracts every "ns/op" result, and compares each benchmark
// against the "after" numbers of a baseline file such as BENCH_pr4.json.
// When a benchmark ran more than once (-count=N), the fastest run is used —
// the minimum is the standard noise-robust statistic for CI machines.
//
// A benchmark slower than its baseline by more than -tolerance (default
// ±20%) fails the gate with exit status 1. Benchmarks present in only one
// of the two sets are reported but never fail the gate, so adding or
// retiring benchmarks does not require touching the baseline in the same
// change.
//
// Usage:
//
//	go test -run='^$' -bench=. -count=3 -json ./... |
//	    go run ./cmd/benchdiff -baseline BENCH_pr4.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_pr4.json", "baseline benchmark file")
		inputPath    = flag.String("input", "-", "go test -json (or raw bench) stream; - for stdin")
		tolerance    = flag.Float64("tolerance", 0.20, "allowed fractional slowdown vs baseline")
	)
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatalf("benchdiff: %v", err)
	}

	var in io.Reader = os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatalf("benchdiff: %v", err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseStream(in)
	if err != nil {
		fatalf("benchdiff: %v", err)
	}
	if len(measured) == 0 {
		fatalf("benchdiff: no benchmark results in input stream")
	}

	rows := compare(base, measured, *tolerance)
	regressions := 0
	for _, row := range rows {
		fmt.Println(row.String())
		if row.Status == statusRegression {
			regressions++
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond ±%.0f%%\n",
			regressions, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmark(s) within ±%.0f%% of baseline\n",
		countCompared(rows), *tolerance*100)
}

func countCompared(rows []row) int {
	n := 0
	for _, r := range rows {
		if r.Status != statusOnlyBaseline && r.Status != statusOnlyMeasured {
			n++
		}
	}
	return n
}

const (
	statusOK           = "ok"
	statusImproved     = "improved"
	statusRegression   = "REGRESSION"
	statusOnlyBaseline = "baseline-only"
	statusOnlyMeasured = "new"
)

// row is one line of the gate report.
type row struct {
	Name       string
	BaselineNs float64
	MeasuredNs float64
	Status     string
}

func (r row) String() string {
	switch r.Status {
	case statusOnlyBaseline:
		return fmt.Sprintf("%-40s baseline %12.0f ns/op   (not run; skipped)", r.Name, r.BaselineNs)
	case statusOnlyMeasured:
		return fmt.Sprintf("%-40s measured %12.0f ns/op   (no baseline; informational)", r.Name, r.MeasuredNs)
	default:
		delta := r.MeasuredNs/r.BaselineNs - 1
		return fmt.Sprintf("%-40s baseline %12.0f ns/op   measured %12.0f ns/op   %+6.1f%%  %s",
			r.Name, r.BaselineNs, r.MeasuredNs, delta*100, r.Status)
	}
}

// compare joins the baseline against the measured set and classifies each
// benchmark. Rows are sorted by name for stable output.
func compare(base map[string]baselineEntry, measured map[string]measurement, tolerance float64) []row {
	names := make(map[string]bool)
	for n := range base {
		names[n] = true
	}
	for n := range measured {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var rows []row
	for _, name := range sorted {
		b, inBase := base[name]
		m, inMeasured := measured[name]
		switch {
		case !inMeasured:
			rows = append(rows, row{Name: name, BaselineNs: b.After.NsPerOp, Status: statusOnlyBaseline})
		case !inBase:
			rows = append(rows, row{Name: name, MeasuredNs: m.nsPerOp, Status: statusOnlyMeasured})
		default:
			status := statusOK
			switch {
			case m.nsPerOp > b.After.NsPerOp*(1+tolerance):
				status = statusRegression
			case m.nsPerOp < b.After.NsPerOp*(1-tolerance):
				status = statusImproved
			}
			rows = append(rows, row{
				Name:       name,
				BaselineNs: b.After.NsPerOp,
				MeasuredNs: m.nsPerOp,
				Status:     status,
			})
		}
	}
	return rows
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
