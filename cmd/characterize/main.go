// Command characterize runs the full library characterisation flow of the
// paper's Fig. 5 — Monte-Carlo moment extraction over the operating grid,
// Table-I quantile regression, slew surfaces, and the wire X_FI/X_FO
// calibration — and writes the resulting coefficients file.
//
// The run is fault tolerant: failed Monte-Carlo samples are retried and
// quarantined (bounded by -max-fail-frac), progress is checkpointed to the
// output file every -checkpoint-every arcs, and an interrupted run (Ctrl-C,
// SIGTERM, -timeout) can be resumed with -resume without re-simulating the
// arcs already fitted.
//
//	characterize -profile standard -out coeffs.json
//	characterize -profile standard -out coeffs.json -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/liberty"
	"repro/internal/profiling"
	"repro/internal/resilience"
	"repro/internal/timinglib"
)

func main() {
	var (
		profileName = flag.String("profile", "standard", "effort profile: quick | standard | paper")
		out         = flag.String("out", "coeffs.json", "output coefficients file")
		libertyOut  = flag.String("liberty", "", "also export a Liberty (.lib) document with LVF tables")
		seed        = flag.Uint64("seed", 1, "master random seed")
		workers     = flag.Int("workers", 0, "Monte-Carlo workers (0 = GOMAXPROCS)")
		resume      = flag.Bool("resume", false, "resume from a checkpointed output file, skipping fitted arcs")
		ckptEvery   = flag.Int("checkpoint-every", 4, "checkpoint the output file every N fitted arcs (0 disables)")
		maxFailFrac = flag.Float64("max-fail-frac", 0, "max quarantined sample fraction per grid point (0 = default 2%, negative disables quarantine)")
		timeout     = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		benchJSON   = flag.String("bench-json", "", "write phase wall times and allocation totals as JSON to this file")
	)
	flag.Parse()

	var err error
	prof, err = profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
		}
	}()
	var bench *profiling.Report
	if *benchJSON != "" {
		bench = profiling.NewReport("characterize")
	}

	profile, err := experiments.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}
	ctx := experiments.NewContext(profile, *seed)
	ctx.Log = os.Stderr
	ctx.Cfg.Workers = *workers
	ctx.Cfg.MaxFailFraction = *maxFailFrac

	runCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}

	opts := experiments.BuildFileOptions{
		CheckpointEvery: *ckptEvery,
		Checkpoint: func(f *timinglib.File) error {
			return f.Save(*out)
		},
	}
	if *resume {
		prev, err := timinglib.Load(*out)
		if err != nil {
			fatal(fmt.Errorf("resume from %s: %w", *out, err))
		}
		switch {
		case prev.Checkpoint == nil:
			fatal(fmt.Errorf("resume from %s: file carries no checkpoint metadata", *out))
		case prev.Checkpoint.Profile != profile.Name || prev.Checkpoint.Seed != *seed:
			fatal(fmt.Errorf("resume from %s: checkpoint was written by -profile %s -seed %d, rerun with those flags",
				*out, prev.Checkpoint.Profile, prev.Checkpoint.Seed))
		}
		if prev.Checkpoint.Complete {
			fmt.Fprintf(os.Stderr, "characterize: %s is already complete (%d arcs); nothing to resume\n",
				*out, len(prev.Arcs))
			return
		}
		fmt.Fprintf(os.Stderr, "characterize: resuming from %s (%d arcs already fitted)\n",
			*out, len(prev.Arcs))
		opts.Resume = prev
	}

	t0 := time.Now()
	var (
		f      *timinglib.File
		report *resilience.Report
	)
	err = bench.Time("characterize", func() error {
		f, report, err = ctx.BuildTimingFileContext(runCtx, opts)
		return err
	})
	if werr := bench.Write(*benchJSON); werr != nil {
		fmt.Fprintln(os.Stderr, "characterize:", werr)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The last checkpoint survives on disk; tell the user how to pick
			// the run back up and exit non-zero so scripts notice.
			fmt.Fprintf(os.Stderr, "characterize: interrupted (%v); rerun with -resume to continue from %s\n",
				err, *out)
			exit(1)
		}
		fatal(err)
	}
	if err := f.Save(*out); err != nil {
		fatal(err)
	}
	if *libertyOut != "" {
		lf, err := os.Create(*libertyOut)
		if err != nil {
			fatal(err)
		}
		if err := liberty.Export(lf, "nsigma28", f); err != nil {
			fatal(err)
		}
		if err := lf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Liberty/LVF export %s\n", *libertyOut)
	}
	fmt.Fprintln(os.Stderr, "characterize:", report.Summary())
	fmt.Printf("wrote %s: %d arcs, %d cells, wire calibration over %d cells (took %v)\n",
		*out, len(f.Arcs), len(f.Cells), len(f.Wire.XFI), time.Since(t0).Round(time.Second))
}

// prof is package-level so that fatal/exit can flush profiles on error
// paths, where os.Exit would skip main's deferred Stop.
var prof *profiling.Session

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	exit(1)
}

func exit(code int) {
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
	}
	os.Exit(code)
}
