// Command characterize runs the full library characterisation flow of the
// paper's Fig. 5 — Monte-Carlo moment extraction over the operating grid,
// Table-I quantile regression, slew surfaces, and the wire X_FI/X_FO
// calibration — and writes the resulting coefficients file.
//
// The run is fault tolerant: failed Monte-Carlo samples are retried and
// quarantined (bounded by -max-fail-frac), progress is checkpointed to the
// output file every -checkpoint-every arcs, and an interrupted run (Ctrl-C,
// SIGTERM, -timeout) can be resumed with -resume without re-simulating the
// arcs already fitted.
//
//	characterize -profile standard -out coeffs.json
//	characterize -profile standard -out coeffs.json -resume
//
// Observability: -trace-out records spans (characterisation arcs, MC grid
// points, individual transients) into a Chrome trace_event JSON file
// loadable in Perfetto; -metrics-out dumps the final Prometheus text
// exposition; -max-arcs bounds the run to the first N arcs for smoke tests
// and tracing demos; -log-level/-log-json configure structured logs.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/liberty"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/resilience"
	"repro/internal/timinglib"
)

func main() {
	var (
		profileName = flag.String("profile", "standard", "effort profile: quick | standard | paper")
		out         = flag.String("out", "coeffs.json", "output coefficients file")
		libertyOut  = flag.String("liberty", "", "also export a Liberty (.lib) document with LVF tables")
		seed        = flag.Uint64("seed", 1, "master random seed")
		workers     = flag.Int("workers", 0, "Monte-Carlo workers (0 = GOMAXPROCS)")
		resume      = flag.Bool("resume", false, "resume from a checkpointed output file, skipping fitted arcs")
		ckptEvery   = flag.Int("checkpoint-every", 4, "checkpoint the output file every N fitted arcs (0 disables)")
		maxFailFrac = flag.Float64("max-fail-frac", 0, "max quarantined sample fraction per grid point (0 = default 2%, negative disables quarantine)")
		mcTol       = flag.Float64("mc-tol", 0, "adaptive Monte-Carlo tolerance: stop a grid point once the delay mean and sigma 95% CI half-widths fall below this fraction of the mean delay (0 = draw the full sample budget)")
		mcFloor     = flag.Int("mc-floor", 0, "minimum adaptive Monte-Carlo samples before convergence is tested (0 = default 64; ignored without -mc-tol)")
		timeout     = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		cpuProfile  = outFlag("cpu-profile-out", "cpuprofile", "write a CPU profile to this file")
		memProfile  = outFlag("mem-profile-out", "memprofile", "write a heap profile to this file at exit")
		benchJSON   = outFlag("bench-out", "bench-json", "write phase wall times and allocation totals as JSON to this file")
		maxArcs     = flag.Int("max-arcs", 0, "stop after this many newly fitted arcs (0 = all; skips wire calibration, keeps the checkpoint resumable)")
		traceFlag   = flag.String("trace-out", "", "record spans and write a Chrome trace_event JSON file here at exit")
		metricsFlag = flag.String("metrics-out", "", "write the final Prometheus metrics exposition to this file at exit")
		logOpts     = obs.RegisterLogFlags(flag.CommandLine)
	)
	flag.Parse()

	var err error
	if err = logOpts.Setup(); err != nil {
		fatal(err)
	}
	traceOut, metricsOut = *traceFlag, *metricsFlag
	if traceOut != "" {
		obs.Trace.Enable(obs.DefaultSpanBuffer)
	}
	obs.RegisterRuntimeMetrics(obs.Default())
	prof, err = profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
		}
	}()
	var bench *profiling.Report
	if *benchJSON != "" {
		bench = profiling.NewReport("characterize")
	}

	profile, err := experiments.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}
	ctx := experiments.NewContext(profile, *seed)
	ctx.Log = os.Stderr
	ctx.Cfg.Workers = *workers
	ctx.Cfg.MaxFailFraction = *maxFailFrac
	if *mcTol < 0 {
		fatal(fmt.Errorf("characterize: -mc-tol must be non-negative, got %g", *mcTol))
	}
	ctx.Cfg.MCTol = *mcTol
	ctx.Cfg.MCFloor = *mcFloor

	runCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}

	opts := experiments.BuildFileOptions{
		CheckpointEvery: *ckptEvery,
		Checkpoint: func(f *timinglib.File) error {
			return f.Save(*out)
		},
		MaxArcs: *maxArcs,
	}
	if *resume {
		prev, err := timinglib.Load(*out)
		if err != nil {
			fatal(fmt.Errorf("resume from %s: %w", *out, err))
		}
		switch {
		case prev.Checkpoint == nil:
			fatal(fmt.Errorf("resume from %s: file carries no checkpoint metadata", *out))
		case prev.Checkpoint.Profile != profile.Name || prev.Checkpoint.Seed != *seed:
			fatal(fmt.Errorf("resume from %s: checkpoint was written by -profile %s -seed %d, rerun with those flags",
				*out, prev.Checkpoint.Profile, prev.Checkpoint.Seed))
		}
		if prev.Checkpoint.Complete {
			fmt.Fprintf(os.Stderr, "characterize: %s is already complete (%d arcs); nothing to resume\n",
				*out, len(prev.Arcs))
			return
		}
		fmt.Fprintf(os.Stderr, "characterize: resuming from %s (%d arcs already fitted)\n",
			*out, len(prev.Arcs))
		opts.Resume = prev
	}

	t0 := time.Now()
	var (
		f      *timinglib.File
		report *resilience.Report
	)
	err = bench.Time("characterize", func() error {
		f, report, err = ctx.BuildTimingFileContext(runCtx, opts)
		return err
	})
	if werr := bench.Write(*benchJSON); werr != nil {
		fmt.Fprintln(os.Stderr, "characterize:", werr)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The last checkpoint survives on disk; tell the user how to pick
			// the run back up and exit non-zero so scripts notice.
			fmt.Fprintf(os.Stderr, "characterize: interrupted (%v); rerun with -resume to continue from %s\n",
				err, *out)
			exit(1)
		}
		fatal(err)
	}
	if err := f.Save(*out); err != nil {
		fatal(err)
	}
	if *libertyOut != "" {
		lf, err := os.Create(*libertyOut)
		if err != nil {
			fatal(err)
		}
		if err := liberty.Export(lf, "nsigma28", f); err != nil {
			fatal(err)
		}
		if err := lf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Liberty/LVF export %s\n", *libertyOut)
	}
	fmt.Fprintln(os.Stderr, "characterize:", report.Summary())
	wireCells := 0
	if f.Wire != nil {
		wireCells = len(f.Wire.XFI)
	}
	fmt.Printf("wrote %s: %d arcs, %d cells, wire calibration over %d cells (took %v)\n",
		*out, len(f.Arcs), len(f.Cells), wireCells, time.Since(t0).Round(time.Second))
	flushObs()
}

// prof is package-level so that fatal/exit can flush profiles on error
// paths, where os.Exit would skip main's deferred Stop. traceOut/metricsOut
// get the same treatment: a partial trace of an interrupted run is exactly
// when you want one.
var (
	prof       *profiling.Session
	traceOut   string
	metricsOut string
)

// flushObs writes the trace and metrics dumps, if requested. Idempotent in
// effect (a second call rewrites identical files), so both the success path
// and exit() may call it.
func flushObs() {
	if traceOut != "" {
		if err := obs.Trace.WriteFile(traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
		} else {
			fmt.Fprintf(os.Stderr, "characterize: wrote trace %s (%d spans, %d dropped)\n",
				traceOut, obs.Trace.Len(), obs.Trace.Dropped())
		}
	}
	if metricsOut != "" {
		var buf bytes.Buffer
		obs.Default().WritePrometheus(&buf)
		if err := os.WriteFile(metricsOut, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	exit(1)
}

func exit(code int) {
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
	}
	flushObs()
	os.Exit(code)
}

// outFlag registers an output-file flag under its canonical -<thing>-out name
// plus its pre-v1 alias.
func outFlag(canonical, deprecated, usage string) *string {
	return obs.RegisterOutFlag(flag.CommandLine, canonical, deprecated, usage)
}
