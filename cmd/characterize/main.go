// Command characterize runs the full library characterisation flow of the
// paper's Fig. 5 — Monte-Carlo moment extraction over the operating grid,
// Table-I quantile regression, slew surfaces, and the wire X_FI/X_FO
// calibration — and writes the resulting coefficients file.
//
//	characterize -profile standard -out coeffs.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/liberty"
)

func main() {
	var (
		profileName = flag.String("profile", "standard", "effort profile: quick | standard | paper")
		out         = flag.String("out", "coeffs.json", "output coefficients file")
		libertyOut  = flag.String("liberty", "", "also export a Liberty (.lib) document with LVF tables")
		seed        = flag.Uint64("seed", 1, "master random seed")
		workers     = flag.Int("workers", 0, "Monte-Carlo workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	profile, err := experiments.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}
	ctx := experiments.NewContext(profile, *seed)
	ctx.Log = os.Stderr
	ctx.Cfg.Workers = *workers

	t0 := time.Now()
	f, err := ctx.BuildTimingFile()
	if err != nil {
		fatal(err)
	}
	if err := f.Save(*out); err != nil {
		fatal(err)
	}
	if *libertyOut != "" {
		lf, err := os.Create(*libertyOut)
		if err != nil {
			fatal(err)
		}
		if err := liberty.Export(lf, "nsigma28", f); err != nil {
			fatal(err)
		}
		if err := lf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Liberty/LVF export %s\n", *libertyOut)
	}
	fmt.Printf("wrote %s: %d arcs, %d cells, wire calibration over %d cells (took %v)\n",
		*out, len(f.Arcs), len(f.Cells), len(f.Wire.XFI), time.Since(t0).Round(time.Second))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
