// Command circuitgen emits benchmark netlists and their extracted
// parasitics: the statistics-matched ISCAS85 substitutes (c432…c7552), the
// PULPino functional units (ADD/SUB/MUL/DIV), or a custom random circuit.
//
//	circuitgen -name c432 -netlist c432.json -spef c432.spef
//	circuitgen -random 5000 -seed 7 -netlist r5k.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/circuits"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rctree"
	"repro/internal/stdcell"
)

func main() {
	var (
		name        = flag.String("name", "", "benchmark name (c432..c7552, ADD, SUB, MUL, DIV)")
		randomCells = flag.Int("random", 0, "generate a random circuit with this many cells instead")
		seed        = flag.Uint64("seed", 1, "seed for -random and placement")
		netOut      = flag.String("netlist", "", "netlist JSON output path (default stdout)")
		verilogOut  = flag.String("verilog", "", "also write structural Verilog to this path")
		spefOut     = flag.String("spef", "", "SPEF output path (omit to skip extraction)")
	)
	logOpts := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if err := logOpts.Setup(); err != nil {
		fatal(err)
	}

	var nl *netlist.Netlist
	var err error
	switch {
	case *randomCells > 0:
		nl, err = circuits.Random(fmt.Sprintf("rand%d", *randomCells),
			circuits.RandomOptions{Cells: *randomCells, Seed: *seed})
	case *name != "":
		nl, err = circuits.ByName(*name)
	default:
		err = fmt.Errorf("need -name or -random (see -h)")
	}
	if err != nil {
		fatal(err)
	}

	var netW *os.File = os.Stdout
	if *netOut != "" {
		netW, err = os.Create(*netOut)
		if err != nil {
			fatal(err)
		}
		defer netW.Close()
	}
	if err := netlist.WriteJSON(netW, nl); err != nil {
		fatal(err)
	}

	if *verilogOut != "" {
		vf, err := os.Create(*verilogOut)
		if err != nil {
			fatal(err)
		}
		if err := netlist.WriteVerilog(vf, nl); err != nil {
			fatal(err)
		}
		if err := vf.Close(); err != nil {
			fatal(err)
		}
	}

	if *spefOut != "" {
		lib := stdcell.NewLibrary(device.Default28nm())
		par := layout.Default28nm()
		pl, err := layout.Place(nl, par, *seed)
		if err != nil {
			fatal(err)
		}
		trees, err := layout.Extract(nl, lib, par, pl)
		if err != nil {
			fatal(err)
		}
		names := make([]string, 0, len(trees))
		for n := range trees {
			names = append(names, n)
		}
		sort.Strings(names)
		ordered := make([]*rctree.Tree, len(names))
		for i, n := range names {
			ordered[i] = trees[n]
		}
		f, err := os.Create(*spefOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rctree.WriteSPEF(f, nl.Name, ordered); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d cells, %d nets, %d inputs, %d outputs\n",
		nl.Name, len(nl.Gates), nl.NumNets(), len(nl.Inputs), len(nl.Outputs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "circuitgen:", err)
	os.Exit(1)
}
