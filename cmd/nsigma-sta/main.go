// Command nsigma-sta runs N-sigma statistical timing analysis on a netlist:
// the paper's Fig. 1 flow, from the coefficients file and parasitics to the
// critical path's nσ quantiles (eq. 10).
//
//	nsigma-sta -lib coeffs.json -circuit c432
//	nsigma-sta -lib coeffs.json -netlist my.json -spef my.spef
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/baseline"
	"repro/internal/circuits"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/rctree"
	"repro/internal/stats"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
)

func main() {
	var (
		libPath = flag.String("lib", "coeffs.json", "coefficients file (from cmd/characterize)")
		circuit = flag.String("circuit", "", "built-in benchmark name (c432.., ADD, SUB, MUL, DIV)")
		netPath = flag.String("netlist", "", "netlist file: .json, .v (structural Verilog) or .bench")
		spef    = flag.String("spef", "", "SPEF parasitics (with -netlist; omit to re-extract)")
		seed    = flag.Uint64("seed", 1, "placement seed when extracting parasitics")
		full    = flag.Bool("path", false, "print the full critical path, stage by stage")
		period  = flag.Float64("period", 0, "clock period in ps for a setup/slack report (0 = skip)")
	)
	logOpts := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if err := logOpts.Setup(); err != nil {
		fatal(err)
	}

	lib, err := timinglib.Load(*libPath)
	if err != nil {
		fatal(err)
	}

	var nl *netlist.Netlist
	switch {
	case *circuit != "":
		nl, err = circuits.ByName(*circuit)
	case *netPath != "":
		nl, err = loadNetlist(*netPath)
	default:
		err = fmt.Errorf("need -circuit or -netlist")
	}
	if err != nil {
		fatal(err)
	}

	var trees map[string]*rctree.Tree
	if *spef != "" {
		f, err := os.Open(*spef)
		if err != nil {
			fatal(err)
		}
		trees, err = rctree.ParseSPEF(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		cellLib := stdcell.NewLibrary(device.Default28nm())
		par := layout.Default28nm()
		pl, err := layout.Place(nl, par, *seed)
		if err != nil {
			fatal(err)
		}
		trees, err = layout.Extract(nl, cellLib, par, pl)
		if err != nil {
			fatal(err)
		}
	}

	timer, err := repro.NewTimer(context.Background(), lib, nl, repro.WithParasitics(trees))
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	res, err := timer.Analyze()
	if err != nil {
		fatal(err)
	}
	took := time.Since(t0)

	p := res.Critical
	fmt.Printf("design %s: %d cells, %d nets, %d endpoints, %d arcs timed in %v\n",
		nl.Name, len(nl.Gates), nl.NumNets(), res.Endpoints, res.GatesTimed, took.Round(time.Microsecond))
	fmt.Printf("critical path: endpoint %s, launch %s, %d stages\n",
		p.Endpoint, p.Launch, len(p.Stages))
	fmt.Printf("%8s %14s\n", "level", "path delay (ps)")
	for _, n := range stats.SigmaLevels {
		fmt.Printf("%+7dσ %14.1f\n", n, p.Quantile(n)*1e12)
	}
	fmt.Printf("corner (PT-like) +3σ bound: %.1f ps\n",
		baseline.CornerPathDelay(p, baseline.CornerOptions{})*1e12)

	if *period > 0 {
		rep, err := res.Slack(*period*1e-12, 3)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nsetup check at %.0f ps (+3σ): WNS %.1f ps, TNS %.1f ps, %d/%d endpoints violated (worst: %s)\n",
			*period, rep.WNS*1e12, rep.TNS*1e12, rep.Violations, rep.Endpoints, rep.Worst)
		minP, err := res.MinPeriod(3)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minimum +3σ period: %.1f ps\n", minP*1e12)
	}

	if *full {
		fmt.Printf("\n%4s %-10s %-4s %-14s %10s %10s %10s %8s\n",
			"#", "cell", "pin", "net", "Tc µ(ps)", "Tc+3σ(ps)", "Elm(ps)", "Xw")
		for i, s := range p.Stages {
			cell := s.Cell
			if cell == "" {
				cell = "(input)"
			}
			var q3 float64
			if s.CellQ != nil {
				q3 = s.CellQ[3]
			}
			fmt.Printf("%4d %-10s %-4s %-14s %10.2f %10.2f %10.3f %8.4f\n",
				i, cell, s.InPin, s.Net, s.CellMoments.Mean*1e12, q3*1e12, s.Elmore*1e12, s.XW)
		}
	}
}

// loadNetlist reads a netlist as JSON, structural Verilog (.v), or ISCAS85
// bench (.bench), dispatching on the extension.
func loadNetlist(path string) (*netlist.Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".v"):
		return netlist.ParseVerilog(f)
	case strings.HasSuffix(path, ".bench"):
		base := filepath.Base(path)
		return netlist.ParseBench(f, strings.TrimSuffix(base, ".bench"), nil)
	default:
		return netlist.ReadJSON(f)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nsigma-sta:", err)
	os.Exit(1)
}
