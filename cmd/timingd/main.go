// Command timingd is the long-lived N-sigma timing-query server: it loads
// the coefficients file once at startup and then hosts any number of named
// designs, each backed by an incremental STA engine, serving concurrent
// timing queries over HTTP/JSON while ECO edits stream in.
//
//	timingd -lib coeffs.json -addr :8080
//
//	# load a built-in benchmark as design "c432", batching two corners
//	curl -X PUT localhost:8080/v1/designs/c432 \
//	     -d '{"circuit":"c432","corners":[{"name":"fast"},{"name":"slow","cap_scale":1.15}]}'
//	# query the 5 worst paths at the current version (slow corner)
//	curl 'localhost:8080/v1/designs/c432/paths?k=5&corner=slow'
//	# resize a cell; only its downstream cone is re-timed
//	curl -X POST localhost:8080/v1/designs/c432/edits \
//	     -d '{"op":"resize","gate":"U7","strength":8}'
//	# several views of one pinned snapshot in a single round trip
//	curl -X POST localhost:8080/v1/designs/c432/batch \
//	     -d '{"queries":[{"kind":"summary"},{"kind":"paths","k":3,"corner":"slow"}]}'
//	# liveness, readiness and Prometheus metrics
//	curl localhost:8080/v1/healthz
//	curl localhost:8080/v1/readyz
//	curl localhost:8080/metrics
//
// Pre-v1 routes (without the /v1 prefix) still work but answer with RFC 8594
// Deprecation headers; see API.md for the full surface and error envelope.
//
// Durability: -data-dir gives every design a write-ahead log plus periodic
// snapshots and replays them on startup, so acknowledged edits survive
// kill -9 (-fsync always, the default, fsyncs each edit before the ack;
// -fsync interval batches fsyncs on -fsync-interval). /v1/readyz answers 503
// not_ready until recovery completes; -verify-recovery cross-checks every
// recovered design against a fresh full analysis. Without -data-dir the
// server is purely in-memory.
//
// Overload protection: -max-queries bounds concurrent query evaluation
// (batches weigh their query count; FIFO waiting up to -admission-wait),
// -edit-queue bounds each design's pending edits, -max-body-bytes caps
// design uploads, and -request-timeout deadlines every request. Exceeding a
// bound returns a typed 503 overloaded or 413 payload_too_large.
//
// Cluster mode: -cluster-peers (with -cluster-self) shards designs across
// several timingd processes on a consistent-hash ring — one owner plus
// -cluster-replicas read replicas per design, snapshot shipping on
// -replicate-interval, heartbeat-driven ejection of dead peers, and 307
// redirects (or transparent proxying under -cluster-proxy) so any node
// serves any request. Ownership is held under a per-design lease with a
// monotonic fencing epoch: when an owner dies, the most caught-up replica
// elects itself under a strictly greater epoch (scan cadence
// -promotion-interval) and the revived old owner is fenced with 409
// stale_epoch until it re-wins. With -data-dir, replicas persist shipped
// snapshots plus the replicated edit tail, so a promoted replica recovers
// from its own durable state. -cluster-join <member-url> grows a running
// cluster dynamically instead of listing every peer up front. See DESIGN.md
// "Cluster" and API.md.
//
// Observability: -log-level/-log-json configure structured logs, -pprof
// (off by default) mounts the net/http/pprof handlers under /debug/pprof/,
// and -trace-out records spans for the whole run and writes a Chrome
// trace_event JSON file at shutdown. Every request gets an X-Request-ID
// (client-supplied or minted) echoed on every response and stamped on every
// log line; -trace-sample head-samples requests into distributed traces
// carried across nodes as W3C traceparent headers (merge per-node trace
// files with cmd/tracemerge); GET /v1/debug/slow lists the -slow-log slowest
// requests with their correlation IDs; /metrics includes process runtime
// gauges (goroutines, heap, GC pause p99, open fds).
//
// SIGINT/SIGTERM drain in-flight requests and stop every design's edit
// queue before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/libsynth"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/timinglib"
	"repro/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		libPath  = flag.String("lib", "coeffs.json", "coefficients file (from cmd/characterize), or \"synth\" for the built-in synthetic library")
		drainFor = flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		traceOut = flag.String("trace-out", "", "record spans and write a Chrome trace_event JSON file here at shutdown")
		traceSmp = flag.Float64("trace-sample", 0, "head-sampling rate for requests arriving without a traceparent (0..1; incoming sampled traceparents always trace)")
		slowKeep = flag.Int("slow-log", 32, "slowest requests retained for GET /v1/debug/slow")

		dataDir       = flag.String("data-dir", "", "durability root: per-design WAL + snapshots, crash recovery on startup (empty = in-memory only)")
		fsyncPolicy   = flag.String("fsync", "always", "WAL fsync policy: always (acknowledged edits are durable) or interval")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period under -fsync interval")
		snapInterval  = flag.Duration("snapshot-interval", 5*time.Minute, "how often each design folds its WAL into a fresh snapshot (0 = only at load and shutdown)")
		verifyRec     = flag.Bool("verify-recovery", false, "cross-check every recovered design against a fresh full analysis at startup (slow)")
		maxBodyBytes  = flag.Int64("max-body-bytes", 64<<20, "largest accepted design-load request body")
		maxQueries    = flag.Int("max-queries", 256, "queries evaluated concurrently across the server; a batch counts as its query count (0 = unlimited)")
		admWait       = flag.Duration("admission-wait", time.Second, "how long a query may queue for admission before 503 overloaded")
		editQueue     = flag.Int("edit-queue", 64, "pending edits buffered per design before 503 overloaded")
		reqTimeout    = flag.Duration("request-timeout", 2*time.Minute, "per-request context deadline (0 = none)")

		clusterPeers = flag.String("cluster-peers", "", "comma-separated base URLs of every cluster node (including this one); empty = single-node")
		clusterJoin  = flag.String("cluster-join", "", "base URL of an existing member: fetch its membership, start with it, and announce this node (dynamic alternative to -cluster-peers; requires -cluster-self)")
		clusterSelf  = flag.String("cluster-self", "", "this node's advertised base URL (required with -cluster-peers or -cluster-join)")
		clusterReps  = flag.Int("cluster-replicas", 1, "read replicas per design beyond its owner")
		clusterProxy = flag.Bool("cluster-proxy", false, "proxy requests for designs owned elsewhere to their owner instead of answering 307 redirects")
		replInterval = flag.Duration("replicate-interval", time.Second, "snapshot shipping cadence from owners to replicas")
		hbInterval   = flag.Duration("heartbeat-interval", time.Second, "peer health probe cadence")
		hbTimeout    = flag.Duration("heartbeat-timeout", 500*time.Millisecond, "per-probe timeout; 3 consecutive failures eject a peer from the ring")
		promoEvery   = flag.Duration("promotion-interval", time.Second, "how often this node scans for designs whose lease owner is dead or unknown and elects itself")

		logOpts = obs.RegisterLogFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := logOpts.Setup(); err != nil {
		fatal("timingd: logging setup", err)
	}
	if *traceOut != "" {
		obs.Trace.Enable(obs.DefaultSpanBuffer)
	}
	obs.RegisterRuntimeMetrics(obs.Default())

	var lib *timinglib.File
	if *libPath == "synth" {
		// The synthetic characterisation-free library: full cell coverage with
		// non-flat LUT planes. For smoke tests and development; not silicon.
		lib = libsynth.File()
	} else {
		var err error
		lib, err = timinglib.Load(*libPath)
		if err != nil {
			fatal("timingd: load library", resilience.Wrap("timingd: load library", err))
		}
	}

	opts := []server.Option{
		server.WithMaxBodyBytes(*maxBodyBytes),
		server.WithAdmission(*maxQueries, *admWait),
		server.WithEditQueueDepth(*editQueue),
		server.WithRequestTimeout(*reqTimeout),
		server.WithTraceSampling(*traceSmp),
		server.WithSlowLogSize(*slowKeep),
	}
	if *dataDir != "" {
		policy, err := wal.ParsePolicy(*fsyncPolicy)
		if err != nil {
			fatal("timingd: -fsync", err)
		}
		opts = append(opts, server.WithStore(server.NewStore(nil, *dataDir, server.StoreConfig{
			Policy:           policy,
			FsyncInterval:    *fsyncInterval,
			SnapshotInterval: *snapInterval,
			VerifyRecovery:   *verifyRec,
		})))
	}
	var node *cluster.Node
	if *clusterPeers != "" || *clusterJoin != "" {
		peers := strings.Split(*clusterPeers, ",")
		if *clusterJoin != "" {
			// Dynamic join: seed the membership from an existing member; the
			// announcement (below, once we serve) spreads us to everyone else.
			fetched, err := fetchMembers(*clusterJoin)
			if err != nil {
				fatal("timingd: -cluster-join", err)
			}
			peers = append(fetched, *clusterSelf)
		}
		var err error
		node, err = cluster.NewNode(cluster.Config{
			Self:              *clusterSelf,
			Peers:             peers,
			Replicas:          *clusterReps,
			Proxy:             *clusterProxy,
			ReplicateInterval: *replInterval,
			HeartbeatInterval: *hbInterval,
			HeartbeatTimeout:  *hbTimeout,
		})
		if err != nil {
			fatal("timingd: cluster", err)
		}
		node.Start()
		defer node.Close()
		opts = append(opts, server.WithCluster(node), server.WithPromotionInterval(*promoEvery))
		slog.Info("timingd: cluster mode", "self", node.Self(),
			"peers", len(node.Ring().Peers()), "replicas", *clusterReps, "proxy", *clusterProxy)
	}
	srv := server.New(lib, opts...)
	handler := http.Handler(srv.Handler())
	if *pprofOn {
		// pprof stays opt-in: profiling endpoints expose internals and cost
		// CPU, so production deployments must ask for them explicitly.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Recover concurrently with listening: /healthz answers immediately,
	// /v1/readyz (and every design route) stays 503 not_ready until every
	// persisted design has been rebuilt and its WAL tail replayed.
	go func() {
		t0 := time.Now()
		if err := srv.Recover(context.Background()); err != nil {
			fatal("timingd: recovery", resilience.Wrap("timingd: recovery", err))
		}
		if *dataDir != "" {
			slog.Info("timingd: recovery complete", "data_dir", *dataDir, "took", time.Since(t0))
		}
	}()

	errc := make(chan error, 1)
	go func() {
		slog.Info("timingd: serving", "addr", *addr, "library", *libPath,
			"arcs", len(lib.Arcs), "pprof", *pprofOn, "data_dir", *dataDir)
		errc <- hs.ListenAndServe()
	}()
	if *clusterJoin != "" {
		go announceJoin(*clusterJoin, node.Self())
	}

	select {
	case err := <-errc:
		// Listen failed before any signal: nothing to drain.
		fatal("timingd: serve", resilience.Wrap("timingd: serve", err))
	case <-ctx.Done():
	}

	slog.Info("timingd: shutdown signal, draining", "timeout", *drainFor)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		slog.Warn("timingd: drain incomplete", "err", err, "class", resilience.Classify(err).String())
	}
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("timingd: serve", resilience.Wrap("timingd: serve", err))
	}
	if *traceOut != "" {
		if err := obs.Trace.WriteFile(*traceOut); err != nil {
			slog.Error("timingd: writing trace", "path", *traceOut, "err", err)
		} else {
			slog.Info("timingd: wrote trace", "path", *traceOut, "spans", obs.Trace.Len(),
				"dropped", obs.Trace.Dropped())
		}
	}
	slog.Info("timingd: bye")
}

// fetchMembers asks an existing cluster member for its membership list.
func fetchMembers(seed string) ([]string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(strings.TrimRight(seed, "/") + "/v1/cluster/members")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("seed %s answered %s", seed, resp.Status)
	}
	var body struct {
		Members []struct {
			URL string `json:"url"`
		} `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	urls := make([]string, 0, len(body.Members))
	for _, m := range body.Members {
		urls = append(urls, m.URL)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("seed %s reported no members", seed)
	}
	return urls, nil
}

// announceJoin POSTs this node to the seed's membership resource, which
// broadcasts the grown list to every member. Retried briefly: the seed may
// itself still be starting.
func announceJoin(seed, self string) {
	client := &http.Client{Timeout: 5 * time.Second}
	body := fmt.Sprintf(`{"peer":%q}`, self)
	for attempt := 0; attempt < 10; attempt++ {
		resp, err := client.Post(strings.TrimRight(seed, "/")+"/v1/cluster/members",
			"application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				slog.Info("timingd: joined cluster", "seed", seed)
				return
			}
		}
		time.Sleep(time.Second)
	}
	slog.Warn("timingd: could not announce join to seed", "seed", seed)
}

func fatal(msg string, err error) {
	slog.Error(msg, "err", err)
	os.Exit(1)
}
