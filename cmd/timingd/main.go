// Command timingd is the long-lived N-sigma timing-query server: it loads
// the coefficients file once at startup and then hosts any number of named
// designs, each backed by an incremental STA engine, serving concurrent
// timing queries over HTTP/JSON while ECO edits stream in.
//
//	timingd -lib coeffs.json -addr :8080
//
//	# load a built-in benchmark as design "c432"
//	curl -X PUT localhost:8080/designs/c432 -d '{"circuit":"c432"}'
//	# query the 5 worst paths at the current version
//	curl 'localhost:8080/designs/c432/paths?k=5'
//	# resize a cell; only its downstream cone is re-timed
//	curl -X POST localhost:8080/designs/c432/edits \
//	     -d '{"op":"resize","gate":"U7","strength":8}'
//	# re-propagation counters, cache hit ratio, request counts
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM drain in-flight requests and stop every design's edit
// queue before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/timinglib"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		libPath  = flag.String("lib", "coeffs.json", "coefficients file (from cmd/characterize)")
		drainFor = flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
	)
	flag.Parse()

	lib, err := timinglib.Load(*libPath)
	if err != nil {
		log.Fatal(resilience.Wrap("timingd: load library", err))
	}

	srv := server.New(lib)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("timingd: serving on %s (library %s, %d arcs)", *addr, *libPath, len(lib.Arcs))
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listen failed before any signal: nothing to drain.
		log.Fatal(resilience.Wrap("timingd: serve", err))
	case <-ctx.Done():
	}

	log.Printf("timingd: shutdown signal, draining for up to %v", *drainFor)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		log.Printf("timingd: drain incomplete: %v (class %s)", err, resilience.Classify(err))
	}
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(resilience.Wrap("timingd: serve", err))
	}
	fmt.Println("timingd: bye")
}
