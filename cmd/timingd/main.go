// Command timingd is the long-lived N-sigma timing-query server: it loads
// the coefficients file once at startup and then hosts any number of named
// designs, each backed by an incremental STA engine, serving concurrent
// timing queries over HTTP/JSON while ECO edits stream in.
//
//	timingd -lib coeffs.json -addr :8080
//
//	# load a built-in benchmark as design "c432", batching two corners
//	curl -X PUT localhost:8080/v1/designs/c432 \
//	     -d '{"circuit":"c432","corners":[{"name":"fast"},{"name":"slow","cap_scale":1.15}]}'
//	# query the 5 worst paths at the current version (slow corner)
//	curl 'localhost:8080/v1/designs/c432/paths?k=5&corner=slow'
//	# resize a cell; only its downstream cone is re-timed
//	curl -X POST localhost:8080/v1/designs/c432/edits \
//	     -d '{"op":"resize","gate":"U7","strength":8}'
//	# several views of one pinned snapshot in a single round trip
//	curl -X POST localhost:8080/v1/designs/c432/batch \
//	     -d '{"queries":[{"kind":"summary"},{"kind":"paths","k":3,"corner":"slow"}]}'
//	# readiness probe and Prometheus metrics
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
//
// Pre-v1 routes (without the /v1 prefix) still work but answer with RFC 8594
// Deprecation headers; see API.md for the full surface and error envelope.
//
// Observability: -log-level/-log-json configure structured logs, -pprof
// (off by default) mounts the net/http/pprof handlers under /debug/pprof/,
// and -trace-out records spans for the whole run and writes a Chrome
// trace_event JSON file at shutdown.
//
// SIGINT/SIGTERM drain in-flight requests and stop every design's edit
// queue before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/timinglib"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		libPath  = flag.String("lib", "coeffs.json", "coefficients file (from cmd/characterize)")
		drainFor = flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		traceOut = flag.String("trace-out", "", "record spans and write a Chrome trace_event JSON file here at shutdown")
		logOpts  = obs.RegisterLogFlags(flag.CommandLine)
	)
	flag.Parse()
	if err := logOpts.Setup(); err != nil {
		fatal("timingd: logging setup", err)
	}
	if *traceOut != "" {
		obs.Trace.Enable(obs.DefaultSpanBuffer)
	}

	lib, err := timinglib.Load(*libPath)
	if err != nil {
		fatal("timingd: load library", resilience.Wrap("timingd: load library", err))
	}

	srv := server.New(lib)
	handler := http.Handler(srv.Handler())
	if *pprofOn {
		// pprof stays opt-in: profiling endpoints expose internals and cost
		// CPU, so production deployments must ask for them explicitly.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		slog.Info("timingd: serving", "addr", *addr, "library", *libPath,
			"arcs", len(lib.Arcs), "pprof", *pprofOn)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listen failed before any signal: nothing to drain.
		fatal("timingd: serve", resilience.Wrap("timingd: serve", err))
	case <-ctx.Done():
	}

	slog.Info("timingd: shutdown signal, draining", "timeout", *drainFor)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		slog.Warn("timingd: drain incomplete", "err", err, "class", resilience.Classify(err).String())
	}
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("timingd: serve", resilience.Wrap("timingd: serve", err))
	}
	if *traceOut != "" {
		if err := obs.Trace.WriteFile(*traceOut); err != nil {
			slog.Error("timingd: writing trace", "path", *traceOut, "err", err)
		} else {
			slog.Info("timingd: wrote trace", "path", *traceOut, "spans", obs.Trace.Len(),
				"dropped", obs.Trace.Dropped())
		}
	}
	slog.Info("timingd: bye")
}

func fatal(msg string, err error) {
	slog.Error(msg, "err", err)
	os.Exit(1)
}
