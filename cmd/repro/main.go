// Command repro regenerates the tables and figures of the paper's
// evaluation section. By default it runs everything; -table / -fig select
// subsets, -profile scales the Monte-Carlo effort, and -lib caches the
// characterised coefficients file between runs.
//
// Examples:
//
//	repro -profile quick -table 2
//	repro -profile standard -fig 10
//	repro -lib coeffs.json -table 3 -circuits c432,c1355
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/timinglib"
)

func main() {
	var (
		profileName = flag.String("profile", "standard", "effort profile: quick | standard | paper")
		table       = flag.String("table", "", "tables to run (comma list of 2,3; empty = all)")
		fig         = flag.String("fig", "", "figures to run (comma list of 2,3,4,7,8,9,10,11; empty = all)")
		only        = flag.Bool("selected-only", false, "run only the explicitly selected tables/figures")
		circuitsCSV = flag.String("circuits", "", "Table III circuit subset (comma list; empty = all 12)")
		libPath     = flag.String("lib", "", "coefficients file to load/save (caches characterisation)")
		csvDir      = flag.String("csv", "", "also write table2/table3/fig10 results as CSV into this directory")
		seed        = flag.Uint64("seed", 1, "master random seed")
		quiet       = flag.Bool("q", false, "suppress progress logging")
		cpuProfile  = outFlag("cpu-profile-out", "cpuprofile", "write a CPU profile to this file")
		memProfile  = outFlag("mem-profile-out", "memprofile", "write a heap profile to this file at exit")
		benchJSON   = outFlag("bench-out", "bench-json", "write per-table/figure wall times and allocation totals as JSON to this file")
	)
	logOpts := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if err := logOpts.Setup(); err != nil {
		fatal(err)
	}

	var err error
	prof, err = profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
		}
	}()
	var bench *profiling.Report
	if *benchJSON != "" {
		bench = profiling.NewReport("repro")
	}

	profile, err := experiments.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}
	ctx := experiments.NewContext(profile, *seed)
	if !*quiet {
		ctx.Log = os.Stderr
	}

	if *libPath != "" {
		if f, err := timinglib.Load(*libPath); err == nil {
			fmt.Fprintf(os.Stderr, "loaded coefficients file %s (%d arcs)\n", *libPath, len(f.Arcs))
			ctx.UseTimingFile(f)
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}

	selected := func(csv, id string) bool {
		if csv == "" {
			return !*only
		}
		for _, v := range strings.Split(csv, ",") {
			if strings.TrimSpace(v) == id {
				return true
			}
		}
		return false
	}

	type csvWriter interface {
		WriteCSV(w io.Writer) error
	}
	run := func(id string, f func() (interface{ Format() string }, error)) {
		fmt.Printf("==== %s ====\n", id)
		var r interface{ Format() string }
		err := bench.Time(id, func() error {
			var ferr error
			r, ferr = f()
			return ferr
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Println(r.Format())
		if *csvDir != "" {
			if cw, ok := r.(csvWriter); ok {
				name := strings.ToLower(strings.NewReplacer(" ", "", ".", "").Replace(id)) + ".csv"
				fh, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					fatal(err)
				}
				if err := cw.WriteCSV(fh); err != nil {
					fatal(err)
				}
				if err := fh.Close(); err != nil {
					fatal(err)
				}
			}
		}
	}

	if selected(*fig, "2") {
		run("Fig. 2", func() (interface{ Format() string }, error) { return ctx.RunFig2() })
	}
	if selected(*fig, "3") {
		run("Fig. 3", func() (interface{ Format() string }, error) { return ctx.RunFig3() })
	}
	if selected(*fig, "4") {
		run("Fig. 4", func() (interface{ Format() string }, error) { return ctx.RunFig4() })
	}
	if selected(*table, "2") {
		run("Table II", func() (interface{ Format() string }, error) { return ctx.RunTable2() })
	}
	if selected(*fig, "7") {
		run("Fig. 7", func() (interface{ Format() string }, error) { return ctx.RunFig7() })
	}
	if selected(*fig, "8") {
		run("Fig. 8", func() (interface{ Format() string }, error) { return ctx.RunFig8() })
	}
	if selected(*fig, "9") {
		run("Fig. 9", func() (interface{ Format() string }, error) { return ctx.RunFig9() })
	}
	if selected(*fig, "10") {
		run("Fig. 10", func() (interface{ Format() string }, error) { return ctx.RunFig10() })
	}
	if selected(*fig, "11") {
		run("Fig. 11", func() (interface{ Format() string }, error) { return ctx.RunFig11() })
	}
	if selected(*table, "3") {
		var names []string
		if *circuitsCSV != "" {
			for _, v := range strings.Split(*circuitsCSV, ",") {
				names = append(names, strings.TrimSpace(v))
			}
		}
		run("Table III", func() (interface{ Format() string }, error) { return ctx.RunTable3(names) })
	}

	if *libPath != "" {
		f, err := ctx.BuildTimingFile()
		if err != nil {
			fatal(err)
		}
		if err := f.Save(*libPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved coefficients file %s\n", *libPath)
	}
	if err := bench.Write(*benchJSON); err != nil {
		fatal(err)
	}
}

// prof is package-level so that fatal can flush profiles on error paths,
// where os.Exit would skip main's deferred Stop.
var prof *profiling.Session

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	if serr := prof.Stop(); serr != nil {
		fmt.Fprintln(os.Stderr, "repro:", serr)
	}
	os.Exit(1)
}

// outFlag registers an output-file flag under its canonical -<thing>-out name
// plus its pre-v1 alias.
func outFlag(canonical, deprecated, usage string) *string {
	return obs.RegisterOutFlag(flag.CommandLine, canonical, deprecated, usage)
}
