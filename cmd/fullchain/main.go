// Command fullchain is a development diagnostic comparing three views of
// the same nominal inverter chain: a flat whole-chain transient (truth),
// the stage-chained simulation with PWL waveform handoff, and the
// stage-chained simulation with ramp reconstruction.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/charlib"
	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/rctree"
	"repro/internal/resilience"
	"repro/internal/waveform"
	"repro/internal/wire"
)

const stages = 12

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fullchain:", err)
	os.Exit(1)
}

func stageTree() *rctree.Tree {
	t := rctree.NewTree("w", 0.05e-15)
	t.MustAddNode("s", 0, 50, 0.2e-15)
	return t
}

func main() {
	logOpts := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if err := logOpts.Setup(); err != nil {
		fatal(err)
	}
	cfg := charlib.DefaultConfig()
	tech := cfg.Tech
	cell := cfg.Lib.MustCell("INVx2")

	// --- flat truth ---
	ck := circuit.New()
	vdd := ck.NodeByName("vdd")
	ck.AddSource(vdd, circuit.DC(tech.Vdd))
	in := ck.NodeByName("n0")
	ramp := circuit.Ramp{T0: 5e-12, TRamp: waveform.RampTimeForSlew(10e-12), V0: 0, V1: tech.Vdd}
	ck.AddSource(in, ramp)
	prev := in
	var last circuit.Node
	for i := 0; i < stages; i++ {
		mid := ck.NodeByName(fmt.Sprintf("m%d", i))
		out := ck.NodeByName(fmt.Sprintf("n%d", i+1))
		cell.Build(ck, map[string]circuit.Node{"vdd": vdd, "A": prev, "Y": mid}, nil)
		ck.AddResistor(mid, out, 50)
		ck.AddCapacitor(mid, circuit.Ground, 0.05e-15)
		ck.AddCapacitor(out, circuit.Ground, 0.2e-15)
		prev = out
		last = out
	}
	ck.AddCapacitor(last, circuit.Ground, cell.PinCap("A")) // terminal load
	res, err := ck.Transient(circuit.SimOptions{TStop: 700e-12, DT: 0.2e-12})
	if err != nil {
		fatal(err)
	}
	edge := waveform.Rising
	if stages%2 == 1 {
		edge = waveform.Falling
	}
	inCross := 5e-12 + 0.5*ramp.TRamp
	tc, err := waveform.CrossTime(res.Times, res.Waveform(last), tech.Vdd/2, bool(edge), 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("flat truth:     %7.2f ps\n", (tc-inCross)*1e12)

	// --- chained, PWL handoff / ramp handoff ---
	for _, handoff := range []bool{true, false} {
		total := 0.0
		slew := 10e-12
		var wave *circuit.PWL
		ed := waveform.Rising
		for i := 0; i < stages; i++ {
			st := &wire.Stage{
				Driver: "INVx2", DriverPin: "A", InEdge: ed, InSlew: slew,
				Tree:            stageTree(),
				Loads:           []wire.LoadSpec{{Leaf: 1, Cell: "INVx2", Pin: "A"}},
				CaptureLeafWave: handoff,
			}
			if handoff {
				st.InWave = wave
			}
			s, err := wire.MeasureStageOnce(cfg, st, nil)
			if err != nil {
				fatal(fmt.Errorf("stage %d: %w", i, err))
			}
			total += s.CellDelay + s.WireDelay
			slew = s.LeafSlew
			wave = s.LeafWave
			ed = ed.Opposite()
		}
		name := "ramp handoff"
		if handoff {
			name = "PWL handoff "
		}
		fmt.Printf("chained %s: %7.2f ps\n", name, total*1e12)
	}

	// --- fault-tolerance digest ---
	// A short Monte-Carlo characterisation of the chain's cell exercises the
	// retry/quarantine machinery and prints its structured report, so this
	// diagnostic doubles as a smoke test of the resilience layer.
	report := &resilience.Report{}
	ch, err := cfg.CharacterizeArc(context.Background(),
		charlib.Arc{Cell: "INVx2", Pin: "A", InEdge: waveform.Rising},
		[]float64{charlib.Reference.Slew}, []float64{charlib.Reference.Load}, 64, 1)
	if err != nil {
		fatal(err)
	}
	report.AddArc(ch.Report)
	fmt.Println(report.Summary())
}
