// Command debugpath is a development diagnostic: it times a uniform
// inverter chain with the N-sigma flow and compares the path quantiles
// against golden path Monte Carlo, isolating the eq. (10) summation error
// from library-size effects.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/charlib"
	"repro/internal/experiments"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/nsigma"
	"repro/internal/obs"
	"repro/internal/sta"
	"repro/internal/stdcell"
	"repro/internal/timinglib"
	"repro/internal/waveform"
	"repro/internal/wire"
)

func main() {
	stages := flag.Int("stages", 20, "chain length")
	samples := flag.Int("samples", 400, "golden MC samples")
	charN := flag.Int("char", 1200, "characterisation samples per point")
	logOpts := obs.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if err := logOpts.Setup(); err != nil {
		fatal(err)
	}

	ctx := experiments.NewContext(experiments.Profile{
		Name: "quick", CharSamples: *charN, EvalSamples: 1000,
		SlewGrid: []float64{10e-12, 60e-12, 150e-12, 300e-12, 600e-12},
		LoadGrid: []float64{0.1e-15, 0.4e-15, 1.2e-15, 3e-15, 6e-15, 10e-15},
	}, 1)
	ctx.Log = os.Stderr

	// Chain netlist: in -> INVx2 ^ N -> out.
	nl := &netlist.Netlist{Name: "chain", Inputs: []string{"n0"}, Outputs: []string{fmt.Sprintf("n%d", *stages)}}
	for i := 0; i < *stages; i++ {
		nl.Gates = append(nl.Gates, netlist.Gate{
			Name: fmt.Sprintf("U%d", i+1), Cell: "INVx2",
			Pins: map[string]string{"A": fmt.Sprintf("n%d", i), "Y": fmt.Sprintf("n%d", i+1)},
		})
	}
	if err := nl.Validate(); err != nil {
		fatal(err)
	}

	// Mini library: INVx2 and INVx4 (pad) arcs only.
	lib := timinglib.New(ctx.Cfg.Lib)
	for _, cell := range []string{"INVx2", "INVx4"} {
		for _, e := range []waveform.Edge{waveform.Rising, waveform.Falling} {
			ch, err := ctx.CharacterizeArc(charlib.Arc{Cell: cell, Pin: "A", InEdge: e})
			if err != nil {
				fatal(err)
			}
			m, err := nsigma.FitArc(ch)
			if err != nil {
				fatal(err)
			}
			lib.AddArc(m)
		}
	}
	// Wire model: single fitted point is irrelevant for a chain with short
	// nets; use a fixed Xw via a stub calibration.
	lib.Wire = nil

	par := layout.Default28nm()
	pl, err := layout.Place(nl, par, 3)
	if err != nil {
		fatal(err)
	}
	trees, err := layout.Extract(nl, ctx.Cfg.Lib, par, pl)
	if err != nil {
		fatal(err)
	}
	timer, err := repro.NewTimer(context.Background(), lib, nl, repro.WithParasitics(trees))
	if err != nil {
		fatal(err)
	}
	res, err := timer.Analyze()
	if err != nil {
		fatal(err)
	}
	p := res.Critical
	fmt.Printf("STA: stages=%d q-3=%0.f q0=%0.f q+3=%0.f ps (spread %.2f)\n",
		len(p.Stages), p.Quantile(-3)*1e12, p.Quantile(0)*1e12, p.Quantile(3)*1e12,
		p.Quantile(3)/p.Quantile(-3))

	golden, err := experiments.PathMC(ctx, p, *samples, 7)
	if err != nil {
		fatal(err)
	}
	q := golden.Quantiles()
	mo := golden.Moments()
	fmt.Printf("MC:  q-3=%0.f q0=%0.f q+3=%0.f ps (spread %.2f)  mu=%0.f sig=%0.f\n",
		q[-3]*1e12, q[0]*1e12, q[3]*1e12, q[3]/q[-3], mo.Mean*1e12, mo.Std*1e12)
	fmt.Printf("errors: -3s %.1f%%  0s %.1f%%  +3s %.1f%%\n",
		(p.Quantile(-3)-q[-3])/q[-3]*100, (p.Quantile(0)-q[0])/q[0]*100, (p.Quantile(3)-q[3])/q[3]*100)
	_ = stdcell.KeyFromString
	compareNominal(ctx, p)
}

// compareNominal chains nominal stage sims and prints per-stage deltas
// against the STA's LUT view.
func compareNominal(ctx *experiments.Context, p *sta.Path) {
	slew := p.Stages[0].InSlew
	fmt.Printf("%3s %-7s %8s %8s | %8s %8s | %8s %8s\n", "#", "cell", "staTc", "nomTc", "staSlw", "nomSlw", "staTw", "nomTw")
	for si, s := range p.Stages {
		if s.Cell == "" {
			slew = s.LeafSlew
			continue
		}
		st := wireStageFrom(ctx, &s)
		st.InSlew = slew
		g, err := wire.MeasureStageOnce(ctx.Cfg, st, nil)
		if err != nil {
			fatal(err)
		}
		if si < 6 || si == len(p.Stages)-1 {
			fmt.Printf("%3d %-7s %8.2f %8.2f | %8.2f %8.2f | %8.3f %8.3f\n",
				si, s.Cell, s.CellMoments.Mean*1e12, g.CellDelay*1e12,
				s.LeafSlew*1e12, g.LeafSlew*1e12, s.Elmore*1e12, g.WireDelay*1e12)
		}
		slew = g.LeafSlew
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "debugpath:", err)
	os.Exit(1)
}

func wireStageFrom(ctx *experiments.Context, s *sta.Stage) *wire.Stage {
	st := &wire.Stage{
		Driver: s.Cell, DriverPin: s.InPin, InEdge: s.InEdge,
		Tree: s.Tree.Clone(),
	}
	loadCell, loadPin := s.SinkCell, s.SinkPin
	if loadCell == "" {
		loadCell, loadPin = "INVx4", "A"
	} else {
		st.Tree.Nodes[s.SinkLeaf].C -= s.SinkPinCap
		if st.Tree.Nodes[s.SinkLeaf].C < 0 {
			st.Tree.Nodes[s.SinkLeaf].C = 0
		}
	}
	st.Loads = []wire.LoadSpec{{Leaf: s.SinkLeaf, Cell: loadCell, Pin: loadPin}}
	return st
}
