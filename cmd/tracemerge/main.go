// Command tracemerge stitches per-node Chrome trace files (the -trace-out
// output of several timingd nodes) into one Perfetto-loadable timeline:
//
//	tracemerge -out merged.json node1.json node2.json node3.json
//
// Each input file becomes one process lane; spans carrying distributed-trace
// identity (trace_id/span_id/parent_span_id args, written when requests are
// sampled) are linked across files with flow arrows, so a proxied or
// replicated request reads as one connected timeline across nodes.
//
// -trace <32-hex-id> keeps only one trace — the way to isolate a single slow
// request pulled from GET /v1/debug/slow or an X-Request-ID-correlated log.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	out := flag.String("out", "", "merged trace output file (default stdout)")
	trace := flag.String("trace", "", "keep only this trace ID (32 lowercase hex digits)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tracemerge [-out merged.json] [-trace <id>] node1.json node2.json ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	merged, err := obs.MergeTraceFiles(flag.Args(), obs.MergeOptions{TraceID: *trace})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracemerge:", err)
		os.Exit(1)
	}
	if *out == "" {
		err = merged.Encode(os.Stdout)
	} else {
		err = merged.Write(*out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracemerge:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracemerge: %d files, %d spans, %d traces, %d cross-node flows\n",
		merged.Files, merged.Spans, merged.Traces, merged.Flows)
}
